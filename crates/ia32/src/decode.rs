//! IA-32 machine-code decoder.
//!
//! Decodes the instruction subset emitted by [`crate::encode`], plus the
//! short (`rel8`) branch forms and accumulator shortcuts real compilers
//! emit. Used by the interpreter, the translator's code discovery, and
//! the disassembler-style debug output.

use crate::flags::{Cond, Size};
use crate::inst::*;
use crate::regs::{Gpr, Mm, Xmm};

/// Errors from decoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Ran out of bytes mid-instruction.
    Truncated,
    /// An opcode outside the supported subset.
    UnsupportedOpcode {
        /// The offending opcode byte.
        opcode: u8,
        /// True if it was on the `0F` escape page.
        two_byte: bool,
    },
    /// A ModRM `/digit` combination outside the subset.
    UnsupportedForm {
        /// The opcode byte.
        opcode: u8,
        /// The ModRM `reg` field.
        digit: u8,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction truncated"),
            DecodeError::UnsupportedOpcode { opcode, two_byte } => {
                if *two_byte {
                    write!(f, "unsupported opcode 0f {opcode:02x}")
                } else {
                    write!(f, "unsupported opcode {opcode:02x}")
                }
            }
            DecodeError::UnsupportedForm { opcode, digit } => {
                write!(f, "unsupported form {opcode:02x} /{digit}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

type Result<T> = std::result::Result<T, DecodeError>;

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn u8(&mut self) -> Result<u8> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn i8(&mut self) -> Result<i32> {
        Ok(self.u8()? as i8 as i32)
    }

    fn u16(&mut self) -> Result<u16> {
        let lo = self.u8()? as u16;
        let hi = self.u8()? as u16;
        Ok(lo | (hi << 8))
    }

    fn u32(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for i in 0..4 {
            v |= (self.u8()? as u32) << (i * 8);
        }
        Ok(v)
    }

    fn imm(&mut self, size: Size) -> Result<i32> {
        match size {
            Size::B => self.i8(),
            Size::W => self.u16().map(|v| v as i16 as i32),
            Size::D => self.u32().map(|v| v as i32),
        }
    }

    /// Decodes a ModRM byte (plus SIB/displacement), returning the `reg`
    /// field and the `r/m` operand.
    fn modrm(&mut self) -> Result<(u8, Rm)> {
        let modrm = self.u8()?;
        let modb = modrm >> 6;
        let reg = (modrm >> 3) & 7;
        let rm = modrm & 7;
        if modb == 3 {
            return Ok((reg, Rm::Reg(Gpr::new(rm))));
        }
        let mut addr = Addr::default();
        let base_bits;
        if rm == 0b100 {
            // SIB byte.
            let sib = self.u8()?;
            let ss = sib >> 6;
            let idx = (sib >> 3) & 7;
            base_bits = sib & 7;
            if idx != 0b100 {
                addr.index = Some((Gpr::new(idx), 1 << ss));
            }
            if base_bits == 0b101 && modb == 0 {
                addr.disp = self.u32()? as i32;
                return Ok((reg, Rm::Mem(addr)));
            }
            addr.base = Some(Gpr::new(base_bits));
        } else if rm == 0b101 && modb == 0 {
            addr.disp = self.u32()? as i32;
            return Ok((reg, Rm::Mem(addr)));
        } else {
            addr.base = Some(Gpr::new(rm));
        }
        match modb {
            0 => {}
            1 => addr.disp = self.i8()?,
            2 => addr.disp = self.u32()? as i32,
            _ => unreachable!(),
        }
        Ok((reg, Rm::Mem(addr)))
    }
}

fn mem_only(rm: Rm, opcode: u8, digit: u8) -> Result<Addr> {
    rm.mem()
        .ok_or(DecodeError::UnsupportedForm { opcode, digit })
}

/// Decodes one instruction from `bytes`, which is assumed to start at
/// guest address `addr` (needed to materialize absolute branch targets).
///
/// Returns the instruction and its encoded length.
///
/// # Errors
///
/// [`DecodeError::Truncated`] if `bytes` ends mid-instruction, or the
/// `Unsupported*` variants for encodings outside the subset (the
/// interpreter converts those into `#UD`).
pub fn decode(bytes: &[u8], addr: u32) -> Result<(Inst, usize)> {
    let mut c = Cursor { bytes, pos: 0 };
    let mut size = Size::D;
    let mut rep = false;
    let mut f3 = false;

    // Prefixes (the subset uses 66 and F3 only).
    loop {
        match c.bytes.get(c.pos) {
            Some(0x66) => {
                size = Size::W;
                c.pos += 1;
            }
            Some(0xF3) => {
                f3 = true;
                rep = true;
                c.pos += 1;
            }
            _ => break,
        }
    }

    let opcode = c.u8()?;
    let inst = match opcode {
        // ALU rows: 00-3B (skipping the accumulator-imm shortcuts).
        0x00..=0x3B if opcode & 7 <= 3 => {
            let op = AluOp::from_digit(opcode >> 3);
            let dir_reg = opcode & 2 != 0; // 1 = r <- r/m
            let opsize = if opcode & 1 == 0 { Size::B } else { size };
            let (reg, rm) = c.modrm()?;
            let reg = Gpr::new(reg);
            if dir_reg {
                match rm {
                    Rm::Reg(_) => Inst::Alu {
                        op,
                        size: opsize,
                        dst: Rm::Reg(reg),
                        src: match rm {
                            Rm::Reg(r) => RmI::Reg(r),
                            Rm::Mem(_) => unreachable!(),
                        },
                    },
                    Rm::Mem(a) => Inst::AluRM {
                        op,
                        size: opsize,
                        dst: reg,
                        src: a,
                    },
                }
            } else {
                Inst::Alu {
                    op,
                    size: opsize,
                    dst: rm,
                    src: RmI::Reg(reg),
                }
            }
        }
        0x40..=0x47 => Inst::IncDec {
            inc: true,
            size,
            dst: Rm::Reg(Gpr::new(opcode - 0x40)),
        },
        0x48..=0x4F => Inst::IncDec {
            inc: false,
            size,
            dst: Rm::Reg(Gpr::new(opcode - 0x48)),
        },
        0x50..=0x57 => Inst::Push {
            src: RmI::Reg(Gpr::new(opcode - 0x50)),
        },
        0x58..=0x5F => Inst::Pop {
            dst: Rm::Reg(Gpr::new(opcode - 0x58)),
        },
        0x68 => Inst::Push {
            src: RmI::Imm(c.u32()? as i32),
        },
        0x69 => {
            let (reg, rm) = c.modrm()?;
            let imm = c.u32()? as i32;
            Inst::ImulRmImm {
                dst: Gpr::new(reg),
                src: rm,
                imm,
            }
        }
        0x6A => Inst::Push {
            src: RmI::Imm(c.i8()?),
        },
        0x6B => {
            let (reg, rm) = c.modrm()?;
            let imm = c.i8()?;
            Inst::ImulRmImm {
                dst: Gpr::new(reg),
                src: rm,
                imm,
            }
        }
        0x70..=0x7F => {
            let cond = Cond::from_code(opcode - 0x70);
            let rel = c.i8()?;
            let target = addr.wrapping_add(c.pos as u32).wrapping_add(rel as u32);
            Inst::Jcc { cond, target }
        }
        0x80 | 0x81 | 0x83 => {
            let opsize = if opcode == 0x80 { Size::B } else { size };
            let (digit, rm) = c.modrm()?;
            let imm = if opcode == 0x81 {
                c.imm(opsize)?
            } else {
                c.i8()?
            };
            let op = AluOp::from_digit(digit);
            Inst::Alu {
                op,
                size: opsize,
                dst: rm,
                src: RmI::Imm(imm),
            }
        }
        0x84 | 0x85 => {
            let opsize = if opcode == 0x84 { Size::B } else { size };
            let (reg, rm) = c.modrm()?;
            Inst::Test {
                size: opsize,
                a: rm,
                b: RmI::Reg(Gpr::new(reg)),
            }
        }
        0x86 | 0x87 => {
            let opsize = if opcode == 0x86 { Size::B } else { size };
            let (reg, rm) = c.modrm()?;
            Inst::Xchg {
                size: opsize,
                reg: Gpr::new(reg),
                rm,
            }
        }
        0x88 | 0x89 => {
            let opsize = if opcode == 0x88 { Size::B } else { size };
            let (reg, rm) = c.modrm()?;
            Inst::Mov {
                size: opsize,
                dst: rm,
                src: RmI::Reg(Gpr::new(reg)),
            }
        }
        0x8A | 0x8B => {
            let opsize = if opcode == 0x8A { Size::B } else { size };
            let (reg, rm) = c.modrm()?;
            match rm {
                Rm::Reg(r) => Inst::Mov {
                    size: opsize,
                    dst: Rm::Reg(Gpr::new(reg)),
                    src: RmI::Reg(r),
                },
                Rm::Mem(a) => Inst::MovLoad {
                    size: opsize,
                    dst: Gpr::new(reg),
                    src: a,
                },
            }
        }
        0x8D => {
            let (reg, rm) = c.modrm()?;
            Inst::Lea {
                dst: Gpr::new(reg),
                addr: mem_only(rm, opcode, reg)?,
            }
        }
        0x8F => {
            let (digit, rm) = c.modrm()?;
            if digit != 0 {
                return Err(DecodeError::UnsupportedForm { opcode, digit });
            }
            Inst::Pop { dst: rm }
        }
        0x90 => Inst::Nop,
        0x98 => Inst::Cwde,
        0x99 => Inst::Cdq,
        0xA4 | 0xA5 => Inst::Movs {
            size: if opcode == 0xA4 { Size::B } else { size },
            rep,
        },
        0xAA | 0xAB => Inst::Stos {
            size: if opcode == 0xAA { Size::B } else { size },
            rep,
        },
        0xB0..=0xB7 => Inst::Mov {
            size: Size::B,
            dst: Rm::Reg(Gpr::new(opcode - 0xB0)),
            src: RmI::Imm(c.i8()?),
        },
        0xB8..=0xBF => Inst::Mov {
            size,
            dst: Rm::Reg(Gpr::new(opcode - 0xB8)),
            src: RmI::Imm(c.imm(size)?),
        },
        0xC0 | 0xC1 => {
            let opsize = if opcode == 0xC0 { Size::B } else { size };
            let (digit, rm) = c.modrm()?;
            let count = c.u8()?;
            let op = match digit {
                4 => ShiftOp::Shl,
                5 => ShiftOp::Shr,
                7 => ShiftOp::Sar,
                _ => return Err(DecodeError::UnsupportedForm { opcode, digit }),
            };
            Inst::Shift {
                op,
                size: opsize,
                dst: rm,
                count: ShiftCount::Imm(count),
            }
        }
        0xC2 => Inst::Ret { pop: c.u16()? },
        0xC3 => Inst::Ret { pop: 0 },
        0xC6 | 0xC7 => {
            let opsize = if opcode == 0xC6 { Size::B } else { size };
            let (digit, rm) = c.modrm()?;
            if digit != 0 {
                return Err(DecodeError::UnsupportedForm { opcode, digit });
            }
            let imm = c.imm(opsize)?;
            Inst::Mov {
                size: opsize,
                dst: rm,
                src: RmI::Imm(imm),
            }
        }
        0xCD => Inst::Int { vector: c.u8()? },
        0xD2 | 0xD3 => {
            let opsize = if opcode == 0xD2 { Size::B } else { size };
            let (digit, rm) = c.modrm()?;
            let op = match digit {
                4 => ShiftOp::Shl,
                5 => ShiftOp::Shr,
                7 => ShiftOp::Sar,
                _ => return Err(DecodeError::UnsupportedForm { opcode, digit }),
            };
            Inst::Shift {
                op,
                size: opsize,
                dst: rm,
                count: ShiftCount::Cl,
            }
        }
        // x87.
        0xD8 => {
            let next = *c.bytes.get(c.pos).ok_or(DecodeError::Truncated)?;
            if next >= 0xC0 {
                c.pos += 1;
                let digit = (next >> 3) & 7;
                let i = next & 7;
                let op = FpArithOp::from_digit(digit)
                    .ok_or(DecodeError::UnsupportedForm { opcode, digit })?;
                Inst::Farith {
                    op,
                    form: FpArithForm::St0Sti(i),
                }
            } else {
                let (digit, rm) = c.modrm()?;
                let a = mem_only(rm, opcode, digit)?;
                let op = FpArithOp::from_digit(digit)
                    .ok_or(DecodeError::UnsupportedForm { opcode, digit })?;
                Inst::Farith {
                    op,
                    form: FpArithForm::St0Mem(Size2::S, a),
                }
            }
        }
        0xD9 => {
            let next = *c.bytes.get(c.pos).ok_or(DecodeError::Truncated)?;
            match next {
                0xC0..=0xC7 => {
                    c.pos += 1;
                    Inst::Fld {
                        src: FpOperand::St(next - 0xC0),
                    }
                }
                0xC8..=0xCF => {
                    c.pos += 1;
                    Inst::Fxch { i: next - 0xC8 }
                }
                0xE0 => {
                    c.pos += 1;
                    Inst::Fchs
                }
                0xE1 => {
                    c.pos += 1;
                    Inst::Fabs
                }
                0xE8 => {
                    c.pos += 1;
                    Inst::Fld1
                }
                0xEE => {
                    c.pos += 1;
                    Inst::Fldz
                }
                0xFA => {
                    c.pos += 1;
                    Inst::Fsqrt
                }
                _ => {
                    let (digit, rm) = c.modrm()?;
                    let a = mem_only(rm, opcode, digit)?;
                    match digit {
                        0 => Inst::Fld {
                            src: FpOperand::M32(a),
                        },
                        2 => Inst::Fst {
                            dst: FpOperand::M32(a),
                            pop: false,
                        },
                        3 => Inst::Fst {
                            dst: FpOperand::M32(a),
                            pop: true,
                        },
                        _ => return Err(DecodeError::UnsupportedForm { opcode, digit }),
                    }
                }
            }
        }
        0xDB => {
            let next = *c.bytes.get(c.pos).ok_or(DecodeError::Truncated)?;
            match next {
                0xE8..=0xEF => {
                    c.pos += 1;
                    Inst::Fcomi {
                        i: next - 0xE8,
                        pop: false,
                        unordered: true,
                    }
                }
                0xF0..=0xF7 => {
                    c.pos += 1;
                    Inst::Fcomi {
                        i: next - 0xF0,
                        pop: false,
                        unordered: false,
                    }
                }
                _ => {
                    let (digit, rm) = c.modrm()?;
                    let a = mem_only(rm, opcode, digit)?;
                    match digit {
                        0 => Inst::Fild { src: a },
                        3 => Inst::Fistp { dst: a },
                        _ => return Err(DecodeError::UnsupportedForm { opcode, digit }),
                    }
                }
            }
        }
        0xDC => {
            let next = *c.bytes.get(c.pos).ok_or(DecodeError::Truncated)?;
            if next >= 0xC0 {
                c.pos += 1;
                let digit = (next >> 3) & 7;
                let i = next & 7;
                let op = FpArithOp::from_digit(digit)
                    .ok_or(DecodeError::UnsupportedForm { opcode, digit })?;
                Inst::Farith {
                    op,
                    form: FpArithForm::StiSt0 { i, pop: false },
                }
            } else {
                let (digit, rm) = c.modrm()?;
                let a = mem_only(rm, opcode, digit)?;
                let op = FpArithOp::from_digit(digit)
                    .ok_or(DecodeError::UnsupportedForm { opcode, digit })?;
                Inst::Farith {
                    op,
                    form: FpArithForm::St0Mem(Size2::D, a),
                }
            }
        }
        0xDD => {
            let next = *c.bytes.get(c.pos).ok_or(DecodeError::Truncated)?;
            match next {
                0xD0..=0xD7 => {
                    c.pos += 1;
                    Inst::Fst {
                        dst: FpOperand::St(next - 0xD0),
                        pop: false,
                    }
                }
                0xD8..=0xDF => {
                    c.pos += 1;
                    Inst::Fst {
                        dst: FpOperand::St(next - 0xD8),
                        pop: true,
                    }
                }
                _ => {
                    let (digit, rm) = c.modrm()?;
                    let a = mem_only(rm, opcode, digit)?;
                    match digit {
                        0 => Inst::Fld {
                            src: FpOperand::M64(a),
                        },
                        2 => Inst::Fst {
                            dst: FpOperand::M64(a),
                            pop: false,
                        },
                        3 => Inst::Fst {
                            dst: FpOperand::M64(a),
                            pop: true,
                        },
                        _ => return Err(DecodeError::UnsupportedForm { opcode, digit }),
                    }
                }
            }
        }
        0xDE => {
            let next = c.u8()?;
            if next < 0xC0 {
                return Err(DecodeError::UnsupportedOpcode {
                    opcode,
                    two_byte: false,
                });
            }
            let digit = (next >> 3) & 7;
            let i = next & 7;
            let op = FpArithOp::from_digit(digit)
                .ok_or(DecodeError::UnsupportedForm { opcode, digit })?;
            Inst::Farith {
                op,
                form: FpArithForm::StiSt0 { i, pop: true },
            }
        }
        0xDF => {
            let next = c.u8()?;
            match next {
                0xE8..=0xEF => Inst::Fcomi {
                    i: next - 0xE8,
                    pop: true,
                    unordered: true,
                },
                0xF0..=0xF7 => Inst::Fcomi {
                    i: next - 0xF0,
                    pop: true,
                    unordered: false,
                },
                _ => {
                    return Err(DecodeError::UnsupportedOpcode {
                        opcode,
                        two_byte: false,
                    })
                }
            }
        }
        0xE8 => {
            let rel = c.u32()? as i32;
            let target = addr.wrapping_add(c.pos as u32).wrapping_add(rel as u32);
            Inst::Call { target }
        }
        0xE9 => {
            let rel = c.u32()? as i32;
            let target = addr.wrapping_add(c.pos as u32).wrapping_add(rel as u32);
            Inst::Jmp { target }
        }
        0xEB => {
            let rel = c.i8()?;
            let target = addr.wrapping_add(c.pos as u32).wrapping_add(rel as u32);
            Inst::Jmp { target }
        }
        0xF4 => Inst::Hlt,
        0xF6 | 0xF7 => {
            let opsize = if opcode == 0xF6 { Size::B } else { size };
            let (digit, rm) = c.modrm()?;
            match digit {
                0 => {
                    let imm = c.imm(opsize)?;
                    Inst::Test {
                        size: opsize,
                        a: rm,
                        b: RmI::Imm(imm),
                    }
                }
                2 => Inst::Not {
                    size: opsize,
                    dst: rm,
                },
                3 => Inst::Neg {
                    size: opsize,
                    dst: rm,
                },
                4 => Inst::MulDiv {
                    op: MulDivOp::Mul,
                    size: opsize,
                    src: rm,
                },
                5 => Inst::MulDiv {
                    op: MulDivOp::Imul,
                    size: opsize,
                    src: rm,
                },
                6 => Inst::MulDiv {
                    op: MulDivOp::Div,
                    size: opsize,
                    src: rm,
                },
                7 => Inst::MulDiv {
                    op: MulDivOp::Idiv,
                    size: opsize,
                    src: rm,
                },
                _ => return Err(DecodeError::UnsupportedForm { opcode, digit }),
            }
        }
        0xFE => {
            let (digit, rm) = c.modrm()?;
            match digit {
                0 => Inst::IncDec {
                    inc: true,
                    size: Size::B,
                    dst: rm,
                },
                1 => Inst::IncDec {
                    inc: false,
                    size: Size::B,
                    dst: rm,
                },
                _ => return Err(DecodeError::UnsupportedForm { opcode, digit }),
            }
        }
        0xFF => {
            let (digit, rm) = c.modrm()?;
            match digit {
                0 => Inst::IncDec {
                    inc: true,
                    size,
                    dst: rm,
                },
                1 => Inst::IncDec {
                    inc: false,
                    size,
                    dst: rm,
                },
                2 => Inst::CallInd { src: rm },
                4 => Inst::JmpInd { src: rm },
                6 => match rm {
                    Rm::Mem(a) => Inst::Push { src: RmI::Mem(a) },
                    Rm::Reg(r) => Inst::Push { src: RmI::Reg(r) },
                },
                _ => return Err(DecodeError::UnsupportedForm { opcode, digit }),
            }
        }
        0x0F => {
            let op2 = c.u8()?;
            match op2 {
                0x0B => Inst::Ud2,
                0x10 | 0x11 if f3 => {
                    let (reg, rm) = c.modrm()?;
                    Inst::Movss {
                        xmm: Xmm::new(reg),
                        rm: xmm_rm(rm),
                        to_xmm: op2 == 0x10,
                    }
                }
                0x10 | 0x11 => {
                    let (reg, rm) = c.modrm()?;
                    Inst::Movps {
                        xmm: Xmm::new(reg),
                        rm: xmm_rm(rm),
                        to_xmm: op2 == 0x10,
                        aligned: false,
                    }
                }
                0x28 | 0x29 => {
                    let (reg, rm) = c.modrm()?;
                    Inst::Movps {
                        xmm: Xmm::new(reg),
                        rm: xmm_rm(rm),
                        to_xmm: op2 == 0x28,
                        aligned: true,
                    }
                }
                0x2A if f3 => {
                    let (reg, rm) = c.modrm()?;
                    Inst::Cvtsi2ss {
                        dst: Xmm::new(reg),
                        src: rm,
                    }
                }
                0x2C if f3 => {
                    let (reg, rm) = c.modrm()?;
                    Inst::Cvttss2si {
                        dst: Gpr::new(reg),
                        src: xmm_rm(rm),
                    }
                }
                0x2E | 0x2F => {
                    let (reg, rm) = c.modrm()?;
                    Inst::Ucomiss {
                        a: Xmm::new(reg),
                        b: xmm_rm(rm),
                        signaling: op2 == 0x2F,
                    }
                }
                0x40..=0x4F => {
                    let cond = Cond::from_code(op2 - 0x40);
                    let (reg, rm) = c.modrm()?;
                    Inst::Cmovcc {
                        cond,
                        dst: Gpr::new(reg),
                        src: rm,
                    }
                }
                0x51 if f3 => {
                    let (reg, rm) = c.modrm()?;
                    Inst::Sqrtss {
                        dst: Xmm::new(reg),
                        src: xmm_rm(rm),
                    }
                }
                0x57 => {
                    let (reg, rm) = c.modrm()?;
                    Inst::Xorps {
                        dst: Xmm::new(reg),
                        src: xmm_rm(rm),
                    }
                }
                0x58 | 0x59 | 0x5C | 0x5D | 0x5E | 0x5F => {
                    let op = match op2 {
                        0x58 => SseOp::Add,
                        0x59 => SseOp::Mul,
                        0x5C => SseOp::Sub,
                        0x5D => SseOp::Min,
                        0x5E => SseOp::Div,
                        _ => SseOp::Max,
                    };
                    let (reg, rm) = c.modrm()?;
                    Inst::SseArith {
                        op,
                        scalar: f3,
                        dst: Xmm::new(reg),
                        src: xmm_rm(rm),
                    }
                }
                0x6E | 0x7E => {
                    let (reg, rm) = c.modrm()?;
                    Inst::Movd {
                        mm: Mm::new(reg),
                        rm,
                        to_mm: op2 == 0x6E,
                    }
                }
                0x6F | 0x7F => {
                    let (reg, rm) = c.modrm()?;
                    Inst::Movq {
                        mm: Mm::new(reg),
                        src: mm_rm(rm),
                        to_mm: op2 == 0x6F,
                    }
                }
                0x77 => Inst::Emms,
                0x80..=0x8F => {
                    let cond = Cond::from_code(op2 - 0x80);
                    let rel = c.u32()? as i32;
                    let target = addr.wrapping_add(c.pos as u32).wrapping_add(rel as u32);
                    Inst::Jcc { cond, target }
                }
                0x90..=0x9F => {
                    let cond = Cond::from_code(op2 - 0x90);
                    let (_, rm) = c.modrm()?;
                    Inst::Setcc { cond, dst: rm }
                }
                0xAF => {
                    let (reg, rm) = c.modrm()?;
                    Inst::ImulRm {
                        dst: Gpr::new(reg),
                        src: rm,
                    }
                }
                0xB6 | 0xB7 => {
                    let (reg, rm) = c.modrm()?;
                    Inst::Movzx {
                        dst: Gpr::new(reg),
                        src_size: if op2 == 0xB6 { Size::B } else { Size::W },
                        src: rm,
                    }
                }
                0xBE | 0xBF => {
                    let (reg, rm) = c.modrm()?;
                    Inst::Movsx {
                        dst: Gpr::new(reg),
                        src_size: if op2 == 0xBE { Size::B } else { Size::W },
                        src: rm,
                    }
                }
                0xD5 | 0xDB | 0xEB | 0xEF | 0xF8 | 0xF9 | 0xFA | 0xFC | 0xFD | 0xFE => {
                    let op = match op2 {
                        0xFC => MmxOp::PAdd(1),
                        0xFD => MmxOp::PAdd(2),
                        0xFE => MmxOp::PAdd(4),
                        0xF8 => MmxOp::PSub(1),
                        0xF9 => MmxOp::PSub(2),
                        0xFA => MmxOp::PSub(4),
                        0xDB => MmxOp::Pand,
                        0xEB => MmxOp::Por,
                        0xEF => MmxOp::Pxor,
                        _ => MmxOp::Pmullw,
                    };
                    let (reg, rm) = c.modrm()?;
                    Inst::PAlu {
                        op,
                        dst: Mm::new(reg),
                        src: mm_rm(rm),
                    }
                }
                _ => {
                    return Err(DecodeError::UnsupportedOpcode {
                        opcode: op2,
                        two_byte: true,
                    })
                }
            }
        }
        _ => {
            return Err(DecodeError::UnsupportedOpcode {
                opcode,
                two_byte: false,
            })
        }
    };
    Ok((inst, c.pos))
}

fn xmm_rm(rm: Rm) -> XmmM {
    match rm {
        Rm::Reg(r) => XmmM::Reg(Xmm::new(r.num())),
        Rm::Mem(a) => XmmM::Mem(a),
    }
}

fn mm_rm(rm: Rm) -> MmM {
    match rm {
        Rm::Reg(r) => MmM::Reg(Mm::new(r.num())),
        Rm::Mem(a) => MmM::Mem(a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_to_vec;
    use crate::regs::*;

    fn roundtrip(i: Inst) {
        let addr = 0x40_0000;
        let bytes = encode_to_vec(&i, addr).expect("encodable");
        let (decoded, len) = decode(&bytes, addr).expect("decodable");
        assert_eq!(len, bytes.len(), "length mismatch for {i}");
        assert_eq!(decoded, i, "roundtrip mismatch, bytes {bytes:02x?}");
    }

    #[test]
    fn roundtrip_core_instructions() {
        use crate::flags::Cond;
        let mem = Addr::base_index(EBX, ESI, 4, 0x20);
        for i in [
            Inst::Mov {
                size: Size::D,
                dst: Rm::Reg(EAX),
                src: RmI::Imm(42),
            },
            Inst::Mov {
                size: Size::B,
                dst: Rm::Mem(mem),
                src: RmI::Imm(-1),
            },
            Inst::MovLoad {
                size: Size::D,
                dst: ECX,
                src: Addr::base_disp(ESP, 4),
            },
            Inst::Alu {
                op: AluOp::Sub,
                size: Size::D,
                dst: Rm::Reg(EDX),
                src: RmI::Imm(1000),
            },
            Inst::AluRM {
                op: AluOp::Xor,
                size: Size::D,
                dst: EDI,
                src: Addr::abs(0x1234),
            },
            Inst::Test {
                size: Size::D,
                a: Rm::Reg(EAX),
                b: RmI::Imm(7),
            },
            Inst::Movzx {
                dst: EAX,
                src_size: Size::B,
                src: Rm::Mem(mem),
            },
            Inst::Movsx {
                dst: EAX,
                src_size: Size::W,
                src: Rm::Reg(EDX),
            },
            Inst::Lea {
                dst: ESI,
                addr: mem,
            },
            Inst::Xchg {
                size: Size::D,
                reg: EAX,
                rm: Rm::Reg(EBX),
            },
            Inst::Push { src: RmI::Imm(300) },
            Inst::Pop { dst: Rm::Reg(EBP) },
            Inst::IncDec {
                inc: true,
                size: Size::D,
                dst: Rm::Reg(EAX),
            },
            Inst::Neg {
                size: Size::D,
                dst: Rm::Reg(EAX),
            },
            Inst::Not {
                size: Size::B,
                dst: Rm::Mem(mem),
            },
            Inst::Shift {
                op: ShiftOp::Sar,
                size: Size::D,
                dst: Rm::Reg(EAX),
                count: ShiftCount::Imm(3),
            },
            Inst::Shift {
                op: ShiftOp::Shl,
                size: Size::D,
                dst: Rm::Reg(EDX),
                count: ShiftCount::Cl,
            },
            Inst::ImulRm {
                dst: EAX,
                src: Rm::Reg(EBX),
            },
            Inst::ImulRmImm {
                dst: EAX,
                src: Rm::Reg(EBX),
                imm: 100000,
            },
            Inst::MulDiv {
                op: MulDivOp::Div,
                size: Size::D,
                src: Rm::Reg(ECX),
            },
            Inst::Cdq,
            Inst::Jmp { target: 0x40_1000 },
            Inst::JmpInd { src: Rm::Reg(EAX) },
            Inst::Jcc {
                cond: Cond::L,
                target: 0x3F_FF00,
            },
            Inst::Call { target: 0x40_2000 },
            Inst::CallInd { src: Rm::Mem(mem) },
            Inst::Ret { pop: 0 },
            Inst::Ret { pop: 8 },
            Inst::Setcc {
                cond: Cond::A,
                dst: Rm::Reg(ECX),
            },
            Inst::Cmovcc {
                cond: Cond::Ne,
                dst: EAX,
                src: Rm::Mem(mem),
            },
            Inst::Nop,
            Inst::Hlt,
            Inst::Ud2,
            Inst::Int { vector: 0x80 },
            Inst::Movs {
                size: Size::D,
                rep: true,
            },
            Inst::Stos {
                size: Size::B,
                rep: false,
            },
        ] {
            roundtrip(i);
        }
    }

    #[test]
    fn roundtrip_fp_mmx_sse() {
        let m = Addr::base_disp(EBP, -16);
        for i in [
            Inst::Fld {
                src: FpOperand::M64(m),
            },
            Inst::Fld {
                src: FpOperand::St(3),
            },
            Inst::Fst {
                dst: FpOperand::M32(m),
                pop: true,
            },
            Inst::Fst {
                dst: FpOperand::St(2),
                pop: false,
            },
            Inst::Fild { src: m },
            Inst::Fistp { dst: m },
            Inst::Farith {
                op: FpArithOp::Mul,
                form: FpArithForm::St0Mem(Size2::D, m),
            },
            Inst::Farith {
                op: FpArithOp::Div,
                form: FpArithForm::St0Sti(1),
            },
            Inst::Farith {
                op: FpArithOp::Add,
                form: FpArithForm::StiSt0 { i: 3, pop: true },
            },
            Inst::Fchs,
            Inst::Fabs,
            Inst::Fsqrt,
            Inst::Fxch { i: 1 },
            Inst::Fld1,
            Inst::Fldz,
            Inst::Fcomi {
                i: 1,
                pop: true,
                unordered: false,
            },
            Inst::Movd {
                mm: Mm::new(2),
                rm: Rm::Reg(EAX),
                to_mm: true,
            },
            Inst::Movq {
                mm: Mm::new(1),
                src: MmM::Mem(m),
                to_mm: true,
            },
            Inst::PAlu {
                op: MmxOp::PAdd(2),
                dst: Mm::new(0),
                src: MmM::Reg(Mm::new(1)),
            },
            Inst::PAlu {
                op: MmxOp::Pmullw,
                dst: Mm::new(3),
                src: MmM::Mem(m),
            },
            Inst::Emms,
            Inst::Movss {
                xmm: Xmm::new(0),
                rm: XmmM::Mem(m),
                to_xmm: true,
            },
            Inst::Movps {
                xmm: Xmm::new(1),
                rm: XmmM::Mem(m),
                to_xmm: false,
                aligned: true,
            },
            Inst::SseArith {
                op: SseOp::Mul,
                scalar: true,
                dst: Xmm::new(2),
                src: XmmM::Reg(Xmm::new(3)),
            },
            Inst::SseArith {
                op: SseOp::Add,
                scalar: false,
                dst: Xmm::new(2),
                src: XmmM::Mem(m),
            },
            Inst::Xorps {
                dst: Xmm::new(4),
                src: XmmM::Reg(Xmm::new(4)),
            },
            Inst::Sqrtss {
                dst: Xmm::new(0),
                src: XmmM::Reg(Xmm::new(1)),
            },
            Inst::Cvtsi2ss {
                dst: Xmm::new(0),
                src: Rm::Reg(EAX),
            },
            Inst::Cvttss2si {
                dst: EAX,
                src: XmmM::Reg(Xmm::new(0)),
            },
            Inst::Ucomiss {
                a: Xmm::new(0),
                b: XmmM::Reg(Xmm::new(1)),
                signaling: false,
            },
        ] {
            roundtrip(i);
        }
    }

    #[test]
    fn short_jump_decodes() {
        // EB FE = jmp to self.
        let (i, len) = decode(&[0xEB, 0xFE], 0x1000).unwrap();
        assert_eq!(len, 2);
        assert_eq!(i, Inst::Jmp { target: 0x1000 });
        // 74 10 = je +0x10.
        let (i, _) = decode(&[0x74, 0x10], 0x1000).unwrap();
        assert_eq!(
            i,
            Inst::Jcc {
                cond: crate::flags::Cond::E,
                target: 0x1012
            }
        );
    }

    #[test]
    fn unsupported_opcode_reported() {
        let e = decode(&[0xCC], 0).unwrap_err();
        assert!(matches!(e, DecodeError::UnsupportedOpcode { .. }));
        assert!(decode(&[], 0).is_err());
        assert!(matches!(decode(&[0x81], 0), Err(DecodeError::Truncated)));
    }
}
