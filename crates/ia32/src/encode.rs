//! IA-32 machine-code encoder.
//!
//! Produces real IA-32 byte encodings (prefixes, ModRM, SIB,
//! displacements) for the instruction subset in [`crate::inst`]. The
//! decoder ([`crate::decode`]) is its exact inverse; a property test
//! checks the round trip.

use crate::flags::Size;
use crate::inst::*;
use crate::regs::Gpr;

/// Errors from encoding an instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// The operand combination has no encoding (e.g. memory-to-memory).
    InvalidOperands(&'static str),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::InvalidOperands(m) => write!(f, "invalid operand combination: {m}"),
        }
    }
}

impl std::error::Error for EncodeError {}

type Result<T> = std::result::Result<T, EncodeError>;

struct Enc<'a> {
    out: &'a mut Vec<u8>,
}

impl Enc<'_> {
    fn b(&mut self, byte: u8) {
        self.out.push(byte);
    }

    fn imm8(&mut self, v: i32) {
        self.out.push(v as u8);
    }

    fn imm16(&mut self, v: i32) {
        self.out.extend_from_slice(&(v as u16).to_le_bytes());
    }

    fn imm32(&mut self, v: i32) {
        self.out.extend_from_slice(&(v as u32).to_le_bytes());
    }

    fn size_prefix(&mut self, size: Size) {
        if size == Size::W {
            self.b(0x66);
        }
    }

    /// Emits ModRM (+SIB +disp) for register-direct `rm`.
    fn modrm_reg(&mut self, reg_field: u8, rm_reg: u8) {
        self.b(0xC0 | (reg_field << 3) | rm_reg);
    }

    /// Emits ModRM (+SIB +disp) for a memory operand.
    fn modrm_mem(&mut self, reg_field: u8, a: &Addr) {
        let scale_bits = |s: u8| match s {
            1 => 0u8,
            2 => 1,
            4 => 2,
            8 => 3,
            _ => unreachable!("Addr validates scale"),
        };
        match (a.base, a.index) {
            (None, None) => {
                // disp32 absolute.
                self.b((reg_field << 3) | 0b101);
                self.imm32(a.disp);
            }
            (Some(base), None) if base.num() != 4 => {
                // [base + disp] without SIB; EBP with mod=00 means disp32,
                // so EBP always carries at least a disp8.
                let (modb, d8) = disp_mode(a.disp, base.num() == 5);
                self.b((modb << 6) | (reg_field << 3) | base.num());
                match (modb, d8) {
                    (0, _) => {}
                    (1, true) => self.imm8(a.disp),
                    _ => self.imm32(a.disp),
                }
            }
            (base, index) => {
                // SIB form (needed for ESP base or any index).
                let (idx_bits, ss) = match index {
                    None => (0b100, 0),
                    Some((i, s)) => (i.num(), scale_bits(s)),
                };
                match base {
                    Some(b) => {
                        let (modb, d8) = disp_mode(a.disp, b.num() == 5);
                        self.b((modb << 6) | (reg_field << 3) | 0b100);
                        self.b((ss << 6) | (idx_bits << 3) | b.num());
                        match (modb, d8) {
                            (0, _) => {}
                            (1, true) => self.imm8(a.disp),
                            _ => self.imm32(a.disp),
                        }
                    }
                    None => {
                        // Index with no base: mod=00, SIB base=101, disp32.
                        self.b((reg_field << 3) | 0b100);
                        self.b((ss << 6) | (idx_bits << 3) | 0b101);
                        self.imm32(a.disp);
                    }
                }
            }
        }
    }

    fn modrm(&mut self, reg_field: u8, rm: &Rm) {
        match rm {
            Rm::Reg(r) => self.modrm_reg(reg_field, r.num()),
            Rm::Mem(a) => self.modrm_mem(reg_field, a),
        }
    }
}

/// Choose ModRM mod bits for a displacement: returns `(mod, use_disp8)`.
fn disp_mode(disp: i32, base_is_ebp: bool) -> (u8, bool) {
    if disp == 0 && !base_is_ebp {
        (0, false)
    } else if (-128..=127).contains(&disp) {
        (1, true)
    } else {
        (2, false)
    }
}

fn fits_i8(v: i32) -> bool {
    (-128..=127).contains(&v)
}

/// Encodes `inst`, assumed to start at address `addr`, appending the bytes
/// to `out`. Returns the encoded length.
///
/// # Errors
///
/// Returns [`EncodeError::InvalidOperands`] for operand combinations that
/// have no IA-32 encoding (e.g. an `Alu` whose source is a memory operand —
/// use [`Inst::AluRM`] for the load-operate direction).
pub fn encode(inst: &Inst, addr: u32, out: &mut Vec<u8>) -> Result<usize> {
    let start = out.len();
    let mut e = Enc { out };
    match inst {
        Inst::Alu { op, size, dst, src } => match src {
            RmI::Reg(r) => {
                e.size_prefix(*size);
                let base = op.digit() * 8;
                e.b(if *size == Size::B { base } else { base + 1 });
                e.modrm(r.num(), dst);
            }
            RmI::Imm(imm) => {
                e.size_prefix(*size);
                if *size == Size::B {
                    e.b(0x80);
                    e.modrm(op.digit(), dst);
                    e.imm8(*imm);
                } else if fits_i8(*imm) {
                    e.b(0x83);
                    e.modrm(op.digit(), dst);
                    e.imm8(*imm);
                } else {
                    e.b(0x81);
                    e.modrm(op.digit(), dst);
                    if *size == Size::W {
                        e.imm16(*imm);
                    } else {
                        e.imm32(*imm);
                    }
                }
            }
            RmI::Mem(_) => {
                return Err(EncodeError::InvalidOperands(
                    "ALU memory source requires AluRM",
                ))
            }
        },
        Inst::AluRM { op, size, dst, src } => {
            e.size_prefix(*size);
            let base = op.digit() * 8;
            e.b(if *size == Size::B { base + 2 } else { base + 3 });
            e.modrm_mem(dst.num(), src);
        }
        Inst::Test { size, a, b } => match b {
            RmI::Reg(r) => {
                e.size_prefix(*size);
                e.b(if *size == Size::B { 0x84 } else { 0x85 });
                e.modrm(r.num(), a);
            }
            RmI::Imm(imm) => {
                e.size_prefix(*size);
                e.b(if *size == Size::B { 0xF6 } else { 0xF7 });
                e.modrm(0, a);
                match size {
                    Size::B => e.imm8(*imm),
                    Size::W => e.imm16(*imm),
                    Size::D => e.imm32(*imm),
                }
            }
            RmI::Mem(_) => return Err(EncodeError::InvalidOperands("TEST with memory second op")),
        },
        Inst::Mov { size, dst, src } => match (dst, src) {
            (Rm::Reg(r), RmI::Imm(imm)) => {
                e.size_prefix(*size);
                match size {
                    Size::B => {
                        e.b(0xB0 + r.num());
                        e.imm8(*imm);
                    }
                    Size::W => {
                        e.b(0xB8 + r.num());
                        e.imm16(*imm);
                    }
                    Size::D => {
                        e.b(0xB8 + r.num());
                        e.imm32(*imm);
                    }
                }
            }
            (Rm::Mem(_), RmI::Imm(imm)) => {
                e.size_prefix(*size);
                e.b(if *size == Size::B { 0xC6 } else { 0xC7 });
                e.modrm(0, dst);
                match size {
                    Size::B => e.imm8(*imm),
                    Size::W => e.imm16(*imm),
                    Size::D => e.imm32(*imm),
                }
            }
            (_, RmI::Reg(r)) => {
                e.size_prefix(*size);
                e.b(if *size == Size::B { 0x88 } else { 0x89 });
                e.modrm(r.num(), dst);
            }
            (_, RmI::Mem(_)) => {
                return Err(EncodeError::InvalidOperands(
                    "MOV memory source requires MovLoad",
                ))
            }
        },
        Inst::MovLoad { size, dst, src } => {
            e.size_prefix(*size);
            e.b(if *size == Size::B { 0x8A } else { 0x8B });
            e.modrm_mem(dst.num(), src);
        }
        Inst::Movzx { dst, src_size, src } => {
            e.b(0x0F);
            e.b(if *src_size == Size::B { 0xB6 } else { 0xB7 });
            e.modrm(dst.num(), src);
        }
        Inst::Movsx { dst, src_size, src } => {
            e.b(0x0F);
            e.b(if *src_size == Size::B { 0xBE } else { 0xBF });
            e.modrm(dst.num(), src);
        }
        Inst::Lea { dst, addr: a } => {
            e.b(0x8D);
            e.modrm_mem(dst.num(), a);
        }
        Inst::Xchg { size, reg, rm } => {
            e.size_prefix(*size);
            e.b(if *size == Size::B { 0x86 } else { 0x87 });
            e.modrm(reg.num(), rm);
        }
        Inst::Push { src } => match src {
            RmI::Reg(r) => e.b(0x50 + r.num()),
            RmI::Imm(imm) => {
                if fits_i8(*imm) {
                    e.b(0x6A);
                    e.imm8(*imm);
                } else {
                    e.b(0x68);
                    e.imm32(*imm);
                }
            }
            RmI::Mem(a) => {
                e.b(0xFF);
                e.modrm_mem(6, a);
            }
        },
        Inst::Pop { dst } => match dst {
            Rm::Reg(r) => e.b(0x58 + r.num()),
            Rm::Mem(a) => {
                e.b(0x8F);
                e.modrm_mem(0, a);
            }
        },
        Inst::IncDec { inc, size, dst } => match (size, dst) {
            (Size::B, _) => {
                e.b(0xFE);
                e.modrm(if *inc { 0 } else { 1 }, dst);
            }
            (_, Rm::Reg(r)) => {
                e.size_prefix(*size);
                e.b(if *inc { 0x40 } else { 0x48 } + r.num());
            }
            (_, Rm::Mem(_)) => {
                e.size_prefix(*size);
                e.b(0xFF);
                e.modrm(if *inc { 0 } else { 1 }, dst);
            }
        },
        Inst::Neg { size, dst } => {
            e.size_prefix(*size);
            e.b(if *size == Size::B { 0xF6 } else { 0xF7 });
            e.modrm(3, dst);
        }
        Inst::Not { size, dst } => {
            e.size_prefix(*size);
            e.b(if *size == Size::B { 0xF6 } else { 0xF7 });
            e.modrm(2, dst);
        }
        Inst::Shift {
            op,
            size,
            dst,
            count,
        } => {
            e.size_prefix(*size);
            match count {
                ShiftCount::Imm(i) => {
                    e.b(if *size == Size::B { 0xC0 } else { 0xC1 });
                    e.modrm(op.digit(), dst);
                    e.imm8(*i as i32);
                }
                ShiftCount::Cl => {
                    e.b(if *size == Size::B { 0xD2 } else { 0xD3 });
                    e.modrm(op.digit(), dst);
                }
            }
        }
        Inst::ImulRm { dst, src } => {
            e.b(0x0F);
            e.b(0xAF);
            e.modrm(dst.num(), src);
        }
        Inst::ImulRmImm { dst, src, imm } => {
            if fits_i8(*imm) {
                e.b(0x6B);
                e.modrm(dst.num(), src);
                e.imm8(*imm);
            } else {
                e.b(0x69);
                e.modrm(dst.num(), src);
                e.imm32(*imm);
            }
        }
        Inst::MulDiv { op, size, src } => {
            e.size_prefix(*size);
            e.b(if *size == Size::B { 0xF6 } else { 0xF7 });
            e.modrm(op.digit(), src);
        }
        Inst::Cdq => e.b(0x99),
        Inst::Cwde => e.b(0x98),
        Inst::Jmp { target } => {
            e.b(0xE9);
            let rel = target.wrapping_sub(addr.wrapping_add(5));
            e.imm32(rel as i32);
        }
        Inst::JmpInd { src } => {
            e.b(0xFF);
            e.modrm(4, src);
        }
        Inst::Jcc { cond, target } => {
            e.b(0x0F);
            e.b(0x80 + cond.code());
            let rel = target.wrapping_sub(addr.wrapping_add(6));
            e.imm32(rel as i32);
        }
        Inst::Call { target } => {
            e.b(0xE8);
            let rel = target.wrapping_sub(addr.wrapping_add(5));
            e.imm32(rel as i32);
        }
        Inst::CallInd { src } => {
            e.b(0xFF);
            e.modrm(2, src);
        }
        Inst::Ret { pop } => {
            if *pop == 0 {
                e.b(0xC3);
            } else {
                e.b(0xC2);
                e.imm16(*pop as i32);
            }
        }
        Inst::Setcc { cond, dst } => {
            e.b(0x0F);
            e.b(0x90 + cond.code());
            e.modrm(0, dst);
        }
        Inst::Cmovcc { cond, dst, src } => {
            e.b(0x0F);
            e.b(0x40 + cond.code());
            e.modrm(dst.num(), src);
        }
        Inst::Nop => e.b(0x90),
        Inst::Hlt => e.b(0xF4),
        Inst::Ud2 => {
            e.b(0x0F);
            e.b(0x0B);
        }
        Inst::Int { vector } => {
            e.b(0xCD);
            e.b(*vector);
        }
        Inst::Movs { size, rep } => {
            if *rep {
                e.b(0xF3);
            }
            e.size_prefix(*size);
            e.b(if *size == Size::B { 0xA4 } else { 0xA5 });
        }
        Inst::Stos { size, rep } => {
            if *rep {
                e.b(0xF3);
            }
            e.size_prefix(*size);
            e.b(if *size == Size::B { 0xAA } else { 0xAB });
        }
        // ---- x87 ----
        Inst::Fld { src } => match src {
            FpOperand::M32(a) => {
                e.b(0xD9);
                e.modrm_mem(0, a);
            }
            FpOperand::M64(a) => {
                e.b(0xDD);
                e.modrm_mem(0, a);
            }
            FpOperand::St(i) => {
                e.b(0xD9);
                e.b(0xC0 + i);
            }
        },
        Inst::Fst { dst, pop } => match dst {
            FpOperand::M32(a) => {
                e.b(0xD9);
                e.modrm_mem(if *pop { 3 } else { 2 }, a);
            }
            FpOperand::M64(a) => {
                e.b(0xDD);
                e.modrm_mem(if *pop { 3 } else { 2 }, a);
            }
            FpOperand::St(i) => {
                e.b(0xDD);
                e.b(if *pop { 0xD8 } else { 0xD0 } + i);
            }
        },
        Inst::Fild { src } => {
            e.b(0xDB);
            e.modrm_mem(0, src);
        }
        Inst::Fistp { dst } => {
            e.b(0xDB);
            e.modrm_mem(3, dst);
        }
        Inst::Farith { op, form } => match form {
            FpArithForm::St0Mem(Size2::S, a) => {
                e.b(0xD8);
                e.modrm_mem(op.digit(), a);
            }
            FpArithForm::St0Mem(Size2::D, a) => {
                e.b(0xDC);
                e.modrm_mem(op.digit(), a);
            }
            FpArithForm::St0Sti(i) => {
                e.b(0xD8);
                e.b(0xC0 + op.digit() * 8 + i);
            }
            FpArithForm::StiSt0 { i, pop } => {
                e.b(if *pop { 0xDE } else { 0xDC });
                e.b(0xC0 + op.digit() * 8 + i);
            }
        },
        Inst::Fchs => {
            e.b(0xD9);
            e.b(0xE0);
        }
        Inst::Fabs => {
            e.b(0xD9);
            e.b(0xE1);
        }
        Inst::Fsqrt => {
            e.b(0xD9);
            e.b(0xFA);
        }
        Inst::Fxch { i } => {
            e.b(0xD9);
            e.b(0xC8 + i);
        }
        Inst::Fld1 => {
            e.b(0xD9);
            e.b(0xE8);
        }
        Inst::Fldz => {
            e.b(0xD9);
            e.b(0xEE);
        }
        Inst::Fcomi { i, pop, unordered } => {
            e.b(if *pop { 0xDF } else { 0xDB });
            e.b(if *unordered { 0xE8 } else { 0xF0 } + i);
        }
        // ---- MMX ----
        Inst::Movd { mm, rm, to_mm } => {
            e.b(0x0F);
            e.b(if *to_mm { 0x6E } else { 0x7E });
            e.modrm(mm.num(), rm);
        }
        Inst::Movq { mm, src, to_mm } => {
            e.b(0x0F);
            e.b(if *to_mm { 0x6F } else { 0x7F });
            match src {
                MmM::Reg(m) => e.modrm_reg(mm.num(), m.num()),
                MmM::Mem(a) => e.modrm_mem(mm.num(), a),
            }
        }
        Inst::PAlu { op, dst, src } => {
            e.b(0x0F);
            let opc = match op {
                MmxOp::PAdd(1) => 0xFC,
                MmxOp::PAdd(2) => 0xFD,
                MmxOp::PAdd(4) => 0xFE,
                MmxOp::PSub(1) => 0xF8,
                MmxOp::PSub(2) => 0xF9,
                MmxOp::PSub(4) => 0xFA,
                MmxOp::Pand => 0xDB,
                MmxOp::Por => 0xEB,
                MmxOp::Pxor => 0xEF,
                MmxOp::Pmullw => 0xD5,
                MmxOp::PAdd(_) | MmxOp::PSub(_) => {
                    return Err(EncodeError::InvalidOperands("bad MMX lane width"))
                }
            };
            e.b(opc);
            match src {
                MmM::Reg(m) => e.modrm_reg(dst.num(), m.num()),
                MmM::Mem(a) => e.modrm_mem(dst.num(), a),
            }
        }
        Inst::Emms => {
            e.b(0x0F);
            e.b(0x77);
        }
        // ---- SSE ----
        Inst::Movss { xmm, rm, to_xmm } => {
            e.b(0xF3);
            e.b(0x0F);
            e.b(if *to_xmm { 0x10 } else { 0x11 });
            match rm {
                XmmM::Reg(x) => e.modrm_reg(xmm.num(), x.num()),
                XmmM::Mem(a) => e.modrm_mem(xmm.num(), a),
            }
        }
        Inst::Movps {
            xmm,
            rm,
            to_xmm,
            aligned,
        } => {
            e.b(0x0F);
            let opc = match (aligned, to_xmm) {
                (true, true) => 0x28,
                (true, false) => 0x29,
                (false, true) => 0x10,
                (false, false) => 0x11,
            };
            e.b(opc);
            match rm {
                XmmM::Reg(x) => e.modrm_reg(xmm.num(), x.num()),
                XmmM::Mem(a) => e.modrm_mem(xmm.num(), a),
            }
        }
        Inst::SseArith {
            op,
            scalar,
            dst,
            src,
        } => {
            if *scalar {
                e.b(0xF3);
            }
            e.b(0x0F);
            e.b(op.opcode());
            match src {
                XmmM::Reg(x) => e.modrm_reg(dst.num(), x.num()),
                XmmM::Mem(a) => e.modrm_mem(dst.num(), a),
            }
        }
        Inst::Xorps { dst, src } => {
            e.b(0x0F);
            e.b(0x57);
            match src {
                XmmM::Reg(x) => e.modrm_reg(dst.num(), x.num()),
                XmmM::Mem(a) => e.modrm_mem(dst.num(), a),
            }
        }
        Inst::Sqrtss { dst, src } => {
            e.b(0xF3);
            e.b(0x0F);
            e.b(0x51);
            match src {
                XmmM::Reg(x) => e.modrm_reg(dst.num(), x.num()),
                XmmM::Mem(a) => e.modrm_mem(dst.num(), a),
            }
        }
        Inst::Cvtsi2ss { dst, src } => {
            e.b(0xF3);
            e.b(0x0F);
            e.b(0x2A);
            e.modrm(dst.num(), src);
        }
        Inst::Cvttss2si { dst, src } => {
            e.b(0xF3);
            e.b(0x0F);
            e.b(0x2C);
            match src {
                XmmM::Reg(x) => e.modrm_reg(dst.num(), x.num()),
                XmmM::Mem(a) => e.modrm_mem(dst.num(), a),
            }
        }
        Inst::Ucomiss { a, b, signaling } => {
            e.b(0x0F);
            e.b(if *signaling { 0x2F } else { 0x2E });
            match b {
                XmmM::Reg(x) => e.modrm_reg(a.num(), x.num()),
                XmmM::Mem(m) => e.modrm_mem(a.num(), m),
            }
        }
    }
    Ok(out.len() - start)
}

/// Convenience: encodes into a fresh vector.
///
/// # Errors
///
/// Same as [`encode`].
pub fn encode_to_vec(inst: &Inst, addr: u32) -> Result<Vec<u8>> {
    let mut v = Vec::with_capacity(8);
    encode(inst, addr, &mut v)?;
    Ok(v)
}

/// The encoded length of an instruction at a given address.
///
/// # Errors
///
/// Same as [`encode`].
pub fn encoded_len(inst: &Inst, addr: u32) -> Result<usize> {
    Ok(encode_to_vec(inst, addr)?.len())
}

#[allow(unused)]
fn gpr(n: u8) -> Gpr {
    Gpr::new(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::Cond;
    use crate::regs::*;

    fn enc(i: Inst) -> Vec<u8> {
        encode_to_vec(&i, 0x1000).expect("encodable")
    }

    #[test]
    fn mov_reg_imm() {
        assert_eq!(
            enc(Inst::Mov {
                size: Size::D,
                dst: Rm::Reg(EAX),
                src: RmI::Imm(0x12345678)
            }),
            vec![0xB8, 0x78, 0x56, 0x34, 0x12]
        );
    }

    #[test]
    fn add_reg_reg() {
        // add eax, ebx => 01 d8
        assert_eq!(
            enc(Inst::Alu {
                op: AluOp::Add,
                size: Size::D,
                dst: Rm::Reg(EAX),
                src: RmI::Reg(EBX)
            }),
            vec![0x01, 0xD8]
        );
    }

    #[test]
    fn add_imm8_uses_83() {
        let b = enc(Inst::Alu {
            op: AluOp::Add,
            size: Size::D,
            dst: Rm::Reg(ECX),
            src: RmI::Imm(5),
        });
        assert_eq!(b, vec![0x83, 0xC1, 0x05]);
    }

    #[test]
    fn push_pop() {
        assert_eq!(enc(Inst::Push { src: RmI::Reg(EAX) }), vec![0x50]);
        assert_eq!(enc(Inst::Pop { dst: Rm::Reg(EBP) }), vec![0x5D]);
        assert_eq!(enc(Inst::Push { src: RmI::Imm(1) }), vec![0x6A, 0x01]);
    }

    #[test]
    fn esp_base_needs_sib() {
        // mov eax, [esp+8] => 8B 44 24 08
        assert_eq!(
            enc(Inst::MovLoad {
                size: Size::D,
                dst: EAX,
                src: Addr::base_disp(ESP, 8)
            }),
            vec![0x8B, 0x44, 0x24, 0x08]
        );
    }

    #[test]
    fn ebp_base_needs_disp8() {
        // mov eax, [ebp] => 8B 45 00
        assert_eq!(
            enc(Inst::MovLoad {
                size: Size::D,
                dst: EAX,
                src: Addr::base(EBP)
            }),
            vec![0x8B, 0x45, 0x00]
        );
    }

    #[test]
    fn sib_scaled_index() {
        // mov eax, [ebx+esi*4+0x10] => 8B 44 B3 10
        assert_eq!(
            enc(Inst::MovLoad {
                size: Size::D,
                dst: EAX,
                src: Addr::base_index(EBX, ESI, 4, 0x10)
            }),
            vec![0x8B, 0x44, 0xB3, 0x10]
        );
    }

    #[test]
    fn abs_disp32() {
        // mov eax, [0xdeadbeef] => 8B 05 ef be ad de
        assert_eq!(
            enc(Inst::MovLoad {
                size: Size::D,
                dst: EAX,
                src: Addr::abs(0xDEADBEEF)
            }),
            vec![0x8B, 0x05, 0xEF, 0xBE, 0xAD, 0xDE]
        );
    }

    #[test]
    fn relative_branch_math() {
        // jmp to 0x1000 from 0x1000: rel = -5.
        let b = enc(Inst::Jmp { target: 0x1000 });
        assert_eq!(b, vec![0xE9, 0xFB, 0xFF, 0xFF, 0xFF]);
        // jcc forward.
        let b = enc(Inst::Jcc {
            cond: Cond::E,
            target: 0x1010,
        });
        assert_eq!(b, vec![0x0F, 0x84, 0x0A, 0x00, 0x00, 0x00]);
    }

    #[test]
    fn word_prefix() {
        let b = enc(Inst::Alu {
            op: AluOp::Add,
            size: Size::W,
            dst: Rm::Reg(EAX),
            src: RmI::Reg(EBX),
        });
        assert_eq!(b[0], 0x66);
    }

    #[test]
    fn x87_forms() {
        assert_eq!(
            enc(Inst::Fld {
                src: FpOperand::St(2)
            }),
            vec![0xD9, 0xC2]
        );
        assert_eq!(enc(Inst::Fxch { i: 1 }), vec![0xD9, 0xC9]);
        assert_eq!(
            enc(Inst::Farith {
                op: FpArithOp::Add,
                form: FpArithForm::StiSt0 { i: 1, pop: true }
            }),
            vec![0xDE, 0xC1]
        );
    }

    #[test]
    fn invalid_mem_mem_rejected() {
        let r = encode_to_vec(
            &Inst::Alu {
                op: AluOp::Add,
                size: Size::D,
                dst: Rm::Reg(EAX),
                src: RmI::Mem(Addr::abs(0)),
            },
            0,
        );
        assert!(r.is_err());
    }

    #[test]
    fn rep_movs() {
        assert_eq!(
            enc(Inst::Movs {
                size: Size::D,
                rep: true
            }),
            vec![0xF3, 0xA5]
        );
    }
}
