//! EFLAGS bits and arithmetic-flag computation.
//!
//! The flag helpers here are the single source of truth for IA-32 flag
//! semantics: the reference interpreter calls them directly, and the
//! translator's differential tests validate generated Itanium flag code
//! against them.

/// Carry flag bit.
pub const CF: u32 = 1 << 0;
/// Parity flag bit (parity of the low result byte).
pub const PF: u32 = 1 << 2;
/// Auxiliary (BCD half-carry) flag bit.
pub const AF: u32 = 1 << 4;
/// Zero flag bit.
pub const ZF: u32 = 1 << 6;
/// Sign flag bit.
pub const SF: u32 = 1 << 7;
/// Direction flag bit (string operations).
pub const DF: u32 = 1 << 10;
/// Overflow flag bit.
pub const OF: u32 = 1 << 11;

/// All six arithmetic status flags (`CF | PF | AF | ZF | SF | OF`).
pub const STATUS: u32 = CF | PF | AF | ZF | SF | OF;

/// Bits of EFLAGS that are always set on IA-32 (bit 1).
pub const RESERVED_ONES: u32 = 1 << 1;

/// Operand sizes for flag computation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Size {
    /// 8-bit operand.
    B,
    /// 16-bit operand.
    W,
    /// 32-bit operand.
    D,
}

impl Size {
    /// Number of bytes in the operand.
    pub fn bytes(self) -> u32 {
        match self {
            Size::B => 1,
            Size::W => 2,
            Size::D => 4,
        }
    }

    /// Number of bits in the operand.
    pub fn bits(self) -> u32 {
        self.bytes() * 8
    }

    /// Mask selecting the operand's bits out of a 32-bit value.
    pub fn mask(self) -> u32 {
        match self {
            Size::B => 0xFF,
            Size::W => 0xFFFF,
            Size::D => 0xFFFF_FFFF,
        }
    }

    /// Mask selecting the operand's sign bit.
    pub fn sign_bit(self) -> u32 {
        1 << (self.bits() - 1)
    }

    /// Truncate `v` to this operand size.
    pub fn trunc(self, v: u32) -> u32 {
        v & self.mask()
    }

    /// Sign-extend the low `bits()` of `v` to 32 bits, returned as `i32`.
    pub fn sext(self, v: u32) -> i32 {
        match self {
            Size::B => v as u8 as i8 as i32,
            Size::W => v as u16 as i16 as i32,
            Size::D => v as i32,
        }
    }
}

/// Parity of the low byte: PF is set when the low 8 bits of the result
/// contain an even number of 1 bits.
pub fn parity(result: u32) -> bool {
    (result as u8).count_ones().is_multiple_of(2)
}

fn szp(result: u32, size: Size) -> u32 {
    let r = size.trunc(result);
    let mut f = 0;
    if r == 0 {
        f |= ZF;
    }
    if r & size.sign_bit() != 0 {
        f |= SF;
    }
    if parity(r) {
        f |= PF;
    }
    f
}

/// Merge `new_bits` into `eflags` for the flag positions in `mask`.
pub fn merge(eflags: u32, new_bits: u32, mask: u32) -> u32 {
    (eflags & !mask) | (new_bits & mask) | RESERVED_ONES
}

/// Flags produced by `ADD` (and the flag part of `INC` when CF is kept).
pub fn add(a: u32, b: u32, size: Size) -> u32 {
    let (a, b) = (size.trunc(a), size.trunc(b));
    let r = a.wrapping_add(b);
    let rt = size.trunc(r);
    let mut f = szp(rt, size);
    if rt < a {
        f |= CF;
    }
    // Overflow: operands same sign, result different sign.
    if (!(a ^ b) & (a ^ rt)) & size.sign_bit() != 0 {
        f |= OF;
    }
    if ((a ^ b ^ rt) & 0x10) != 0 {
        f |= AF;
    }
    f
}

/// Flags produced by `ADC`.
pub fn adc(a: u32, b: u32, carry_in: bool, size: Size) -> u32 {
    let (a, b) = (size.trunc(a), size.trunc(b));
    let c = carry_in as u32;
    let r64 = a as u64 + b as u64 + c as u64;
    let rt = size.trunc(r64 as u32);
    let mut f = szp(rt, size);
    if r64 > size.mask() as u64 {
        f |= CF;
    }
    if (!(a ^ b) & (a ^ rt)) & size.sign_bit() != 0 {
        f |= OF;
    }
    if ((a ^ b ^ rt) & 0x10) != 0 {
        f |= AF;
    }
    f
}

/// Flags produced by `SUB` and `CMP` (`a - b`).
pub fn sub(a: u32, b: u32, size: Size) -> u32 {
    let (a, b) = (size.trunc(a), size.trunc(b));
    let rt = size.trunc(a.wrapping_sub(b));
    let mut f = szp(rt, size);
    if b > a {
        f |= CF;
    }
    if ((a ^ b) & (a ^ rt)) & size.sign_bit() != 0 {
        f |= OF;
    }
    if ((a ^ b ^ rt) & 0x10) != 0 {
        f |= AF;
    }
    f
}

/// Flags produced by `SBB` (`a - b - carry_in`).
pub fn sbb(a: u32, b: u32, carry_in: bool, size: Size) -> u32 {
    let (a, b) = (size.trunc(a), size.trunc(b));
    let c = carry_in as u32;
    let rt = size.trunc(a.wrapping_sub(b).wrapping_sub(c));
    let mut f = szp(rt, size);
    if (b as u64 + c as u64) > a as u64 {
        f |= CF;
    }
    if ((a ^ b) & (a ^ rt)) & size.sign_bit() != 0 {
        f |= OF;
    }
    if ((a ^ b ^ rt) & 0x10) != 0 {
        f |= AF;
    }
    f
}

/// Flags produced by the logic operations `AND`, `OR`, `XOR`, `TEST`:
/// CF and OF cleared, AF undefined (we clear it, as most hardware does).
pub fn logic(result: u32, size: Size) -> u32 {
    szp(result, size)
}

/// Flags produced by `INC` (CF is preserved by the caller).
pub fn inc(a: u32, size: Size) -> u32 {
    let rt = size.trunc(size.trunc(a).wrapping_add(1));
    let mut f = szp(rt, size);
    if rt == size.sign_bit() {
        f |= OF;
    }
    if (a ^ rt) & 0x10 != 0 {
        f |= AF;
    }
    f
}

/// Flags produced by `DEC` (CF is preserved by the caller).
pub fn dec(a: u32, size: Size) -> u32 {
    let rt = size.trunc(size.trunc(a).wrapping_sub(1));
    let mut f = szp(rt, size);
    if size.trunc(a) == size.sign_bit() {
        f |= OF;
    }
    if (a ^ rt) & 0x10 != 0 {
        f |= AF;
    }
    f
}

/// Flags produced by `NEG` (`0 - a`).
pub fn neg(a: u32, size: Size) -> u32 {
    let mut f = sub(0, a, size);
    // CF is set iff the operand was non-zero.
    if size.trunc(a) != 0 {
        f |= CF;
    } else {
        f &= !CF;
    }
    f
}

/// Flags produced by `SHL` with a non-zero masked count.
///
/// CF is the last bit shifted out; OF (count == 1) is CF xor the result
/// sign. For counts > 1 OF is undefined on hardware; we use the same
/// formula, which is what the translator generates too.
pub fn shl(a: u32, count: u32, size: Size) -> u32 {
    debug_assert!(count > 0 && count < 32);
    let a = size.trunc(a);
    let rt = size.trunc(a << count);
    let mut f = szp(rt, size);
    let carry = if count <= size.bits() {
        (a >> (size.bits() - count)) & 1
    } else {
        0
    };
    if carry != 0 {
        f |= CF;
    }
    let sign = (rt & size.sign_bit() != 0) as u32;
    if carry ^ sign != 0 {
        f |= OF;
    }
    f
}

/// Flags produced by `SHR` with a non-zero masked count.
pub fn shr(a: u32, count: u32, size: Size) -> u32 {
    debug_assert!(count > 0 && count < 32);
    let a = size.trunc(a);
    let rt = size.trunc(if count >= size.bits() { 0 } else { a >> count });
    let mut f = szp(rt, size);
    if count <= size.bits() && (a >> (count - 1)) & 1 != 0 {
        f |= CF;
    }
    // OF (count==1) = original sign bit; we use the same for all counts.
    if a & size.sign_bit() != 0 {
        f |= OF;
    }
    f
}

/// Flags produced by `SAR` with a non-zero masked count.
pub fn sar(a: u32, count: u32, size: Size) -> u32 {
    debug_assert!(count > 0 && count < 32);
    let sa = size.sext(a);
    let shift = count.min(size.bits() - 1).min(31);
    let rt = size.trunc((sa >> shift) as u32);
    let effective = count.min(31);
    let carry_bit = if effective >= size.bits() {
        (sa < 0) as u32
    } else {
        ((sa >> (effective - 1)) & 1) as u32
    };
    let mut f = szp(rt, size);
    if carry_bit != 0 {
        f |= CF;
    }
    // OF is cleared by SAR.
    f
}

/// Flags produced by wide multiplies (`MUL`): CF=OF=1 when the upper half
/// of the result is non-zero. SF/ZF/PF are undefined; we compute them from
/// the low half for determinism.
pub fn mul(low: u32, high: u32, size: Size) -> u32 {
    let mut f = szp(low, size);
    if high != 0 {
        f |= CF | OF;
    }
    f
}

/// Flags produced by signed wide multiplies (`IMUL`): CF=OF=1 when the
/// result does not fit the (signed) low half.
pub fn imul(low: u32, high: u32, size: Size) -> u32 {
    let mut f = szp(low, size);
    let sign_extended_high = if low & size.sign_bit() != 0 {
        size.mask()
    } else {
        0
    };
    if size.trunc(high) != sign_extended_high {
        f |= CF | OF;
    }
    f
}

/// IA-32 condition codes, in the hardware encoding order used by
/// `Jcc`/`SETcc`/`CMOVcc` opcodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Cond {
    /// Overflow (`OF=1`).
    O = 0,
    /// Not overflow.
    No = 1,
    /// Below / carry (`CF=1`).
    B = 2,
    /// Above or equal / not carry.
    Ae = 3,
    /// Equal / zero (`ZF=1`).
    E = 4,
    /// Not equal / not zero.
    Ne = 5,
    /// Below or equal (`CF=1 || ZF=1`).
    Be = 6,
    /// Above.
    A = 7,
    /// Sign (`SF=1`).
    S = 8,
    /// Not sign.
    Ns = 9,
    /// Parity (`PF=1`).
    P = 10,
    /// Not parity.
    Np = 11,
    /// Less (signed, `SF != OF`).
    L = 12,
    /// Greater or equal (signed).
    Ge = 13,
    /// Less or equal (signed, `ZF=1 || SF != OF`).
    Le = 14,
    /// Greater (signed).
    G = 15,
}

impl Cond {
    /// Creates a condition from its 4-bit opcode encoding.
    ///
    /// # Panics
    ///
    /// Panics if `n > 15`.
    pub fn from_code(n: u8) -> Cond {
        assert!(n < 16, "condition code out of range: {n}");
        // SAFETY-free table lookup keeps this panic-checked and const-friendly.
        [
            Cond::O,
            Cond::No,
            Cond::B,
            Cond::Ae,
            Cond::E,
            Cond::Ne,
            Cond::Be,
            Cond::A,
            Cond::S,
            Cond::Ns,
            Cond::P,
            Cond::Np,
            Cond::L,
            Cond::Ge,
            Cond::Le,
            Cond::G,
        ][n as usize]
    }

    /// The 4-bit encoding of this condition.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The inverse condition (flips the low encoding bit, as hardware does).
    pub fn negate(self) -> Cond {
        Cond::from_code(self.code() ^ 1)
    }

    /// Evaluates the condition against an EFLAGS value.
    pub fn eval(self, eflags: u32) -> bool {
        let cf = eflags & CF != 0;
        let zf = eflags & ZF != 0;
        let sf = eflags & SF != 0;
        let of = eflags & OF != 0;
        let pf = eflags & PF != 0;
        match self {
            Cond::O => of,
            Cond::No => !of,
            Cond::B => cf,
            Cond::Ae => !cf,
            Cond::E => zf,
            Cond::Ne => !zf,
            Cond::Be => cf || zf,
            Cond::A => !cf && !zf,
            Cond::S => sf,
            Cond::Ns => !sf,
            Cond::P => pf,
            Cond::Np => !pf,
            Cond::L => sf != of,
            Cond::Ge => sf == of,
            Cond::Le => zf || sf != of,
            Cond::G => !zf && sf == of,
        }
    }

    /// The set of EFLAGS bits this condition reads.
    pub fn flags_read(self) -> u32 {
        match self {
            Cond::O | Cond::No => OF,
            Cond::B | Cond::Ae => CF,
            Cond::E | Cond::Ne => ZF,
            Cond::Be | Cond::A => CF | ZF,
            Cond::S | Cond::Ns => SF,
            Cond::P | Cond::Np => PF,
            Cond::L | Cond::Ge => SF | OF,
            Cond::Le | Cond::G => ZF | SF | OF,
        }
    }

    /// The conventional mnemonic suffix (`jcc`/`setcc` spelling).
    pub fn mnemonic(self) -> &'static str {
        [
            "o", "no", "b", "ae", "e", "ne", "be", "a", "s", "ns", "p", "np", "l", "ge", "le", "g",
        ][self.code() as usize]
    }
}

impl std::fmt::Display for Cond {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_matches_definition() {
        assert!(parity(0x00));
        assert!(!parity(0x01));
        assert!(parity(0x03));
        assert!(parity(0xFF));
        // Only the low byte participates.
        assert!(parity(0xFF00));
    }

    #[test]
    fn add_flags_basic() {
        let f = add(1, 2, Size::D);
        assert_eq!(f & (CF | ZF | SF | OF), 0);

        // 0xFFFFFFFF + 1 = 0 with carry.
        let f = add(u32::MAX, 1, Size::D);
        assert_ne!(f & CF, 0);
        assert_ne!(f & ZF, 0);
        assert_eq!(f & OF, 0);

        // 0x7FFFFFFF + 1 overflows.
        let f = add(0x7FFF_FFFF, 1, Size::D);
        assert_ne!(f & OF, 0);
        assert_ne!(f & SF, 0);
        assert_eq!(f & CF, 0);
    }

    #[test]
    fn sub_flags_basic() {
        // 1 - 2 borrows.
        let f = sub(1, 2, Size::D);
        assert_ne!(f & CF, 0);
        assert_ne!(f & SF, 0);

        // 0x80000000 - 1 overflows (signed).
        let f = sub(0x8000_0000, 1, Size::D);
        assert_ne!(f & OF, 0);
        assert_eq!(f & SF, 0);

        let f = sub(5, 5, Size::D);
        assert_ne!(f & ZF, 0);
        assert_eq!(f & CF, 0);
    }

    #[test]
    fn byte_size_flags() {
        // 0xFF + 1 = 0 with carry at byte size.
        let f = add(0xFF, 1, Size::B);
        assert_ne!(f & CF, 0);
        assert_ne!(f & ZF, 0);
        // 0x7F + 1 overflows at byte size.
        let f = add(0x7F, 1, Size::B);
        assert_ne!(f & OF, 0);
    }

    #[test]
    fn adc_sbb_carry_chain() {
        let f = adc(u32::MAX, 0, true, Size::D);
        assert_ne!(f & CF, 0);
        assert_ne!(f & ZF, 0);
        let f = sbb(0, 0, true, Size::D);
        assert_ne!(f & CF, 0);
        assert_ne!(f & SF, 0);
    }

    #[test]
    fn inc_dec_overflow() {
        let f = inc(0x7FFF_FFFF, Size::D);
        assert_ne!(f & OF, 0);
        let f = dec(0x8000_0000, Size::D);
        assert_ne!(f & OF, 0);
        let f = dec(1, Size::D);
        assert_ne!(f & ZF, 0);
        assert_eq!(f & OF, 0);
    }

    #[test]
    fn neg_carry() {
        assert_eq!(neg(0, Size::D) & CF, 0);
        assert_ne!(neg(1, Size::D) & CF, 0);
    }

    #[test]
    fn shifts() {
        // shl 0x80000000 by 1: carry out, result 0.
        let f = shl(0x8000_0000, 1, Size::D);
        assert_ne!(f & CF, 0);
        assert_ne!(f & ZF, 0);
        assert_ne!(f & OF, 0); // carry(1) xor sign(0)

        let f = shr(1, 1, Size::D);
        assert_ne!(f & CF, 0);
        assert_ne!(f & ZF, 0);

        // sar 0xC0000000 by 31: result 0xFFFFFFFF, last bit out (bit 30) = 1.
        let f = sar(0xC000_0000, 31, Size::D);
        assert_ne!(f & CF, 0);
        assert_eq!(f & ZF, 0);
        assert_ne!(f & SF, 0);
        // sar 0x80000000 by 31: bit 30 = 0, so no carry.
        let f = sar(0x8000_0000, 31, Size::D);
        assert_eq!(f & CF, 0);
    }

    #[test]
    fn mul_flags() {
        assert_eq!(mul(10, 0, Size::D) & (CF | OF), 0);
        assert_eq!(mul(0, 1, Size::D) & (CF | OF), CF | OF);
        // -1 * -1 = 1: fits in signed low half.
        assert_eq!(imul(1, 0, Size::D) & (CF | OF), 0);
        // -1 (low) with high = -1 fits (it is just -1).
        assert_eq!(imul(u32::MAX, u32::MAX, Size::D) & (CF | OF), 0);
        // low 0x80000000 with high 0 does not fit signed.
        assert_ne!(imul(0x8000_0000, 0, Size::D) & OF, 0);
    }

    #[test]
    fn cond_eval_and_negate() {
        for code in 0..16 {
            let c = Cond::from_code(code);
            assert_eq!(c.code(), code);
            for ef in [0, CF, ZF, SF, OF, CF | ZF, SF | OF, ZF | SF | OF, PF] {
                assert_eq!(c.eval(ef), !c.negate().eval(ef), "cond {c} flags {ef:x}");
            }
        }
    }

    #[test]
    fn cond_flags_read_covers_eval() {
        // Changing a flag outside flags_read() must not change eval().
        for code in 0..16 {
            let c = Cond::from_code(code);
            let read = c.flags_read();
            for ef in 0..64u32 {
                let ef = ((ef & 1) * CF)
                    | (((ef >> 1) & 1) * PF)
                    | (((ef >> 2) & 1) * ZF)
                    | (((ef >> 3) & 1) * SF)
                    | (((ef >> 4) & 1) * OF)
                    | (((ef >> 5) & 1) * AF);
                let flipped = ef ^ AF; // AF is read by no condition
                assert_eq!(c.eval(ef), c.eval(flipped));
                let _ = read;
            }
        }
    }

    #[test]
    fn merge_keeps_unmasked() {
        let ef = SF | CF | RESERVED_ONES;
        let out = merge(ef, ZF, ZF | SF);
        assert_ne!(out & ZF, 0);
        assert_eq!(out & SF, 0);
        assert_ne!(out & CF, 0); // untouched
        assert_ne!(out & RESERVED_ONES, 0);
    }
}
