//! x87 FPU state: the register stack, TOS, tag word, and status word.
//!
//! The paper's §5 is largely about the cost of emulating exactly this
//! structure on Itanium's flat FP register file: `ST(i)` addressing is
//! relative to a rotating top-of-stack, every access must be checked
//! against the tag word, and the MMX registers alias the significands of
//! the physical registers.
//!
//! Precision substitution: physical registers hold `f64` rather than the
//! 80-bit extended format (documented in DESIGN.md §2).

/// Value stored in one physical x87 register.
///
/// MMX instructions write the 64-bit significand directly ("aliasing"),
/// which on real hardware leaves an invalid extended-precision pattern;
/// we model the two interpretations explicitly.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum FpReg {
    /// A floating-point value (valid for FP use).
    F(f64),
    /// An MMX value written through the aliasing path. FP reads observe
    /// a NaN, as on hardware.
    M(u64),
}

impl FpReg {
    /// The value as seen by FP instructions.
    pub fn as_f64(self) -> f64 {
        match self {
            FpReg::F(v) => v,
            FpReg::M(_) => f64::NAN,
        }
    }

    /// The value as seen by MMX instructions (the significand).
    pub fn as_mmx(self) -> u64 {
        match self {
            FpReg::F(v) => v.to_bits(), // approximation of the significand
            FpReg::M(v) => v,
        }
    }
}

/// x87 status-word bits we model.
pub mod status {
    /// Invalid-operation exception flag.
    pub const IE: u16 = 1 << 0;
    /// Stack-fault flag.
    pub const SF: u16 = 1 << 6;
    /// C0 condition bit.
    pub const C0: u16 = 1 << 8;
    /// C1 condition bit (also "stack overflow" direction on stack fault).
    pub const C1: u16 = 1 << 9;
    /// C2 condition bit.
    pub const C2: u16 = 1 << 10;
    /// C3 condition bit.
    pub const C3: u16 = 1 << 14;
    /// TOS field shift (bits 11-13).
    pub const TOP_SHIFT: u16 = 11;
}

/// An x87 stack fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FpuFault {
    /// Push onto a full (valid-tagged) register: stack overflow.
    Overflow,
    /// Read/pop of an empty register: stack underflow.
    Underflow,
}

impl std::fmt::Display for FpuFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FpuFault::Overflow => write!(f, "x87 stack overflow"),
            FpuFault::Underflow => write!(f, "x87 stack underflow"),
        }
    }
}

impl std::error::Error for FpuFault {}

/// The x87 FPU architectural state.
#[derive(Clone, PartialEq, Debug)]
pub struct Fpu {
    /// Physical registers R0-R7 (not stack-relative).
    pub regs: [FpReg; 8],
    /// Top-of-stack physical index (0-7). Loads decrement it.
    pub top: u8,
    /// Tag word, one bit per physical register: 1 = valid, 0 = empty.
    /// (The real tag word has 2 bits per register; valid/empty is the
    /// distinction the translator's speculation checks.)
    pub tags: u8,
    /// Status word (condition codes + exception flags).
    pub status: u16,
    /// True while in "MMX mode" — the mode bit the translator's
    /// FP↔MMX aliasing speculation tracks.
    pub mmx_mode: bool,
}

impl Default for Fpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Fpu {
    /// Power-on state: empty stack, TOS = 0.
    pub fn new() -> Fpu {
        Fpu {
            regs: [FpReg::F(0.0); 8],
            top: 0,
            tags: 0,
            status: 0,
            mmx_mode: false,
        }
    }

    /// Physical register index of `ST(i)`.
    pub fn phys(&self, i: u8) -> u8 {
        (self.top.wrapping_add(i)) & 7
    }

    /// True if `ST(i)` holds a valid value.
    pub fn is_valid(&self, i: u8) -> bool {
        self.tags & (1 << self.phys(i)) != 0
    }

    /// Reads `ST(i)` as FP.
    ///
    /// # Errors
    ///
    /// [`FpuFault::Underflow`] if the register is tagged empty.
    pub fn st(&self, i: u8) -> Result<f64, FpuFault> {
        if !self.is_valid(i) {
            return Err(FpuFault::Underflow);
        }
        Ok(self.regs[self.phys(i) as usize].as_f64())
    }

    /// Writes `ST(i)` (must already be valid, e.g. an arithmetic result).
    ///
    /// # Errors
    ///
    /// [`FpuFault::Underflow`] if the register is tagged empty.
    pub fn set_st(&mut self, i: u8, v: f64) -> Result<(), FpuFault> {
        if !self.is_valid(i) {
            return Err(FpuFault::Underflow);
        }
        self.regs[self.phys(i) as usize] = FpReg::F(v);
        self.mmx_mode = false;
        Ok(())
    }

    /// Pushes a value (decrements TOS).
    ///
    /// # Errors
    ///
    /// [`FpuFault::Overflow`] if the new top register is already valid.
    pub fn push(&mut self, v: f64) -> Result<(), FpuFault> {
        let new_top = self.top.wrapping_sub(1) & 7;
        if self.tags & (1 << new_top) != 0 {
            self.status |= status::SF | status::IE | status::C1;
            return Err(FpuFault::Overflow);
        }
        self.top = new_top;
        self.regs[new_top as usize] = FpReg::F(v);
        self.tags |= 1 << new_top;
        self.mmx_mode = false;
        self.sync_top();
        Ok(())
    }

    /// Pops the stack (tags `ST(0)` empty, increments TOS).
    ///
    /// # Errors
    ///
    /// [`FpuFault::Underflow`] if `ST(0)` is empty.
    pub fn pop(&mut self) -> Result<f64, FpuFault> {
        let v = self.st(0)?;
        self.tags &= !(1 << self.top);
        self.top = (self.top + 1) & 7;
        self.sync_top();
        Ok(v)
    }

    /// Exchanges `ST(0)` and `ST(i)`.
    ///
    /// # Errors
    ///
    /// [`FpuFault::Underflow`] if either register is empty.
    pub fn fxch(&mut self, i: u8) -> Result<(), FpuFault> {
        if !self.is_valid(0) || !self.is_valid(i) {
            return Err(FpuFault::Underflow);
        }
        let a = self.phys(0) as usize;
        let b = self.phys(i) as usize;
        self.regs.swap(a, b);
        Ok(())
    }

    /// MMX write to `MMi`: sets the significand of physical register `i`,
    /// tags it valid, forces TOS to 0, and enters MMX mode — the aliasing
    /// behaviour the translator speculates about.
    pub fn mmx_write(&mut self, i: u8, v: u64) {
        self.regs[i as usize & 7] = FpReg::M(v);
        self.tags |= 1 << (i & 7);
        self.top = 0;
        self.mmx_mode = true;
        self.sync_top();
    }

    /// MMX read of `MMi`.
    pub fn mmx_read(&self, i: u8) -> u64 {
        self.regs[i as usize & 7].as_mmx()
    }

    /// `EMMS`: empties the tag word and leaves MMX mode.
    pub fn emms(&mut self) {
        self.tags = 0;
        self.mmx_mode = false;
    }

    fn sync_top(&mut self) {
        self.status = (self.status & !(0b111 << status::TOP_SHIFT))
            | ((self.top as u16) << status::TOP_SHIFT);
    }

    /// The number of valid stack entries.
    pub fn depth(&self) -> u32 {
        self.tags.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_rotates_tos() {
        let mut f = Fpu::new();
        f.push(1.0).unwrap();
        assert_eq!(f.top, 7);
        f.push(2.0).unwrap();
        assert_eq!(f.top, 6);
        assert_eq!(f.st(0).unwrap(), 2.0);
        assert_eq!(f.st(1).unwrap(), 1.0);
        assert_eq!(f.pop().unwrap(), 2.0);
        assert_eq!(f.pop().unwrap(), 1.0);
        assert_eq!(f.depth(), 0);
    }

    #[test]
    fn underflow_and_overflow_fault() {
        let mut f = Fpu::new();
        assert_eq!(f.pop().unwrap_err(), FpuFault::Underflow);
        for i in 0..8 {
            f.push(i as f64).unwrap();
        }
        assert_eq!(f.push(9.0).unwrap_err(), FpuFault::Overflow);
        assert_ne!(f.status & status::SF, 0);
    }

    #[test]
    fn fxch_swaps() {
        let mut f = Fpu::new();
        f.push(1.0).unwrap();
        f.push(2.0).unwrap();
        f.fxch(1).unwrap();
        assert_eq!(f.st(0).unwrap(), 1.0);
        assert_eq!(f.st(1).unwrap(), 2.0);
    }

    #[test]
    fn mmx_aliasing() {
        let mut f = Fpu::new();
        f.push(1.0).unwrap();
        assert!(!f.mmx_mode);
        f.mmx_write(3, 0x1122334455667788);
        assert!(f.mmx_mode);
        assert_eq!(f.top, 0, "MMX write forces TOS to 0");
        assert_eq!(f.mmx_read(3), 0x1122334455667788);
        // FP view of an MMX register is NaN.
        assert!(f.regs[3].as_f64().is_nan());
        f.emms();
        assert_eq!(f.depth(), 0);
        assert!(!f.mmx_mode);
    }

    #[test]
    fn status_word_top_field() {
        let mut f = Fpu::new();
        f.push(1.0).unwrap();
        assert_eq!((f.status >> status::TOP_SHIFT) & 7, 7);
    }
}
