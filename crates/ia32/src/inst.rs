//! The IA-32 instruction model.
//!
//! [`Inst`] is the decoded form shared by the encoder, decoder, reference
//! interpreter, and the translator's template library. The subset covers
//! the integer, control-flow, x87, MMX, and SSE instructions the paper's
//! evaluation exercises.

use crate::flags::{Cond, Size};
use crate::regs::{Gpr, Mm, Xmm};
use std::fmt;

/// A memory operand's effective-address expression:
/// `[base + index*scale + disp]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Addr {
    /// Optional base register.
    pub base: Option<Gpr>,
    /// Optional scaled index: `(register, scale)` with scale in {1,2,4,8}.
    /// The index register may not be `ESP` (hardware restriction).
    pub index: Option<(Gpr, u8)>,
    /// Signed displacement.
    pub disp: i32,
}

impl Addr {
    /// An absolute address (displacement only).
    pub fn abs(disp: u32) -> Addr {
        Addr {
            base: None,
            index: None,
            disp: disp as i32,
        }
    }

    /// `[base]`.
    pub fn base(base: Gpr) -> Addr {
        Addr {
            base: Some(base),
            index: None,
            disp: 0,
        }
    }

    /// `[base + disp]`.
    pub fn base_disp(base: Gpr, disp: i32) -> Addr {
        Addr {
            base: Some(base),
            index: None,
            disp,
        }
    }

    /// `[base + index*scale + disp]`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not 1, 2, 4, or 8, or if `index` is `ESP`.
    pub fn base_index(base: Gpr, index: Gpr, scale: u8, disp: i32) -> Addr {
        Addr::base(base).with_index(index, scale).with_disp(disp)
    }

    /// Adds a scaled index.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not 1, 2, 4, or 8, or if `index` is `ESP`.
    pub fn with_index(mut self, index: Gpr, scale: u8) -> Addr {
        assert!(
            matches!(scale, 1 | 2 | 4 | 8),
            "invalid scale factor: {scale}"
        );
        assert_ne!(index, crate::regs::ESP, "ESP cannot be an index register");
        self.index = Some((index, scale));
        self
    }

    /// Sets the displacement.
    pub fn with_disp(mut self, disp: i32) -> Addr {
        self.disp = disp;
        self
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some((i, s)) = self.index {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{i}*{s}")?;
            first = false;
        }
        if self.disp != 0 || first {
            if first {
                write!(f, "{:#x}", self.disp as u32)?;
            } else if self.disp >= 0 {
                write!(f, "+{:#x}", self.disp)?;
            } else {
                write!(f, "-{:#x}", -(self.disp as i64))?;
            }
        }
        write!(f, "]")
    }
}

/// A register-or-memory operand (the ModRM `r/m` field).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Rm {
    /// A general-purpose register.
    Reg(Gpr),
    /// A memory operand.
    Mem(Addr),
}

impl Rm {
    /// Returns the memory address expression if this is a memory operand.
    pub fn mem(self) -> Option<Addr> {
        match self {
            Rm::Reg(_) => None,
            Rm::Mem(a) => Some(a),
        }
    }

    /// True if this is a memory operand.
    pub fn is_mem(self) -> bool {
        matches!(self, Rm::Mem(_))
    }
}

impl From<Gpr> for Rm {
    fn from(r: Gpr) -> Rm {
        Rm::Reg(r)
    }
}

impl From<Addr> for Rm {
    fn from(a: Addr) -> Rm {
        Rm::Mem(a)
    }
}

impl fmt::Display for Rm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rm::Reg(r) => write!(f, "{r}"),
            Rm::Mem(a) => write!(f, "{a}"),
        }
    }
}

/// A register, memory, or immediate source operand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RmI {
    /// A general-purpose register.
    Reg(Gpr),
    /// A memory operand.
    Mem(Addr),
    /// An immediate (sign-extended to the operand size as needed).
    Imm(i32),
}

impl RmI {
    /// Returns the memory address expression if this is a memory operand.
    pub fn mem(self) -> Option<Addr> {
        match self {
            RmI::Mem(a) => Some(a),
            _ => None,
        }
    }
}

impl From<Gpr> for RmI {
    fn from(r: Gpr) -> RmI {
        RmI::Reg(r)
    }
}

impl From<Addr> for RmI {
    fn from(a: Addr) -> RmI {
        RmI::Mem(a)
    }
}

impl From<i32> for RmI {
    fn from(i: i32) -> RmI {
        RmI::Imm(i)
    }
}

impl From<Rm> for RmI {
    fn from(rm: Rm) -> RmI {
        match rm {
            Rm::Reg(r) => RmI::Reg(r),
            Rm::Mem(a) => RmI::Mem(a),
        }
    }
}

impl fmt::Display for RmI {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmI::Reg(r) => write!(f, "{r}"),
            RmI::Mem(a) => write!(f, "{a}"),
            RmI::Imm(i) => write!(f, "{:#x}", *i),
        }
    }
}

/// Two-operand ALU operations that read and write `dst` and set the
/// arithmetic flags.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum AluOp {
    /// Addition.
    Add = 0,
    /// Bitwise OR.
    Or = 1,
    /// Add with carry.
    Adc = 2,
    /// Subtract with borrow.
    Sbb = 3,
    /// Bitwise AND.
    And = 4,
    /// Subtraction.
    Sub = 5,
    /// Bitwise XOR.
    Xor = 6,
    /// Compare (subtraction that discards the result).
    Cmp = 7,
}

impl AluOp {
    /// The `/digit` used in the `0x80`-group immediate encodings, which
    /// also selects the opcode row (`op * 8`).
    pub fn digit(self) -> u8 {
        self as u8
    }

    /// Creates an op from its encoding digit.
    ///
    /// # Panics
    ///
    /// Panics if `d > 7`.
    pub fn from_digit(d: u8) -> AluOp {
        [
            AluOp::Add,
            AluOp::Or,
            AluOp::Adc,
            AluOp::Sbb,
            AluOp::And,
            AluOp::Sub,
            AluOp::Xor,
            AluOp::Cmp,
        ][d as usize]
    }

    /// True if the operation writes its destination (`CMP` does not).
    pub fn writes_dst(self) -> bool {
        !matches!(self, AluOp::Cmp)
    }

    /// True if the operation reads CF (`ADC`/`SBB`).
    pub fn reads_carry(self) -> bool {
        matches!(self, AluOp::Adc | AluOp::Sbb)
    }

    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        ["add", "or", "adc", "sbb", "and", "sub", "xor", "cmp"][self as usize]
    }
}

/// Shift operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ShiftOp {
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
}

impl ShiftOp {
    /// The ModRM `/digit` in the shift-group encodings.
    pub fn digit(self) -> u8 {
        match self {
            ShiftOp::Shl => 4,
            ShiftOp::Shr => 5,
            ShiftOp::Sar => 7,
        }
    }

    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Shl => "shl",
            ShiftOp::Shr => "shr",
            ShiftOp::Sar => "sar",
        }
    }
}

/// Shift count operand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ShiftCount {
    /// An immediate count (masked to 5 bits by hardware).
    Imm(u8),
    /// The `CL` register.
    Cl,
}

/// One-operand `F6`/`F7`-group multiply/divide operations on
/// `EDX:EAX` (or `AX` for byte size).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MulDivOp {
    /// Unsigned multiply: `EDX:EAX = EAX * src`.
    Mul,
    /// Signed multiply (one-operand form).
    Imul,
    /// Unsigned divide: `EAX = EDX:EAX / src`, `EDX = remainder`.
    Div,
    /// Signed divide.
    Idiv,
}

impl MulDivOp {
    /// The ModRM `/digit` in the `F6`/`F7` group.
    pub fn digit(self) -> u8 {
        match self {
            MulDivOp::Mul => 4,
            MulDivOp::Imul => 5,
            MulDivOp::Div => 6,
            MulDivOp::Idiv => 7,
        }
    }

    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MulDivOp::Mul => "mul",
            MulDivOp::Imul => "imul",
            MulDivOp::Div => "div",
            MulDivOp::Idiv => "idiv",
        }
    }
}

/// An x87 source/destination that is either memory (32- or 64-bit float)
/// or a stack register `ST(i)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpOperand {
    /// A 32-bit float in memory.
    M32(Addr),
    /// A 64-bit float in memory.
    M64(Addr),
    /// Stack register `ST(i)`.
    St(u8),
}

/// x87 arithmetic operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpArithOp {
    /// `dst = dst + src`.
    Add,
    /// `dst = dst - src`.
    Sub,
    /// `dst = src - dst` (reverse subtract).
    SubR,
    /// `dst = dst * src`.
    Mul,
    /// `dst = dst / src`.
    Div,
    /// `dst = src / dst` (reverse divide).
    DivR,
}

impl FpArithOp {
    /// The ModRM `/digit` in the `D8`/`DC` groups.
    pub fn digit(self) -> u8 {
        match self {
            FpArithOp::Add => 0,
            FpArithOp::Mul => 1,
            FpArithOp::Sub => 4,
            FpArithOp::SubR => 5,
            FpArithOp::Div => 6,
            FpArithOp::DivR => 7,
        }
    }

    /// Creates an op from its digit, if it is an arithmetic digit.
    pub fn from_digit(d: u8) -> Option<FpArithOp> {
        match d {
            0 => Some(FpArithOp::Add),
            1 => Some(FpArithOp::Mul),
            4 => Some(FpArithOp::Sub),
            5 => Some(FpArithOp::SubR),
            6 => Some(FpArithOp::Div),
            7 => Some(FpArithOp::DivR),
            _ => None,
        }
    }

    /// Applies the operation.
    pub fn apply(self, dst: f64, src: f64) -> f64 {
        match self {
            FpArithOp::Add => dst + src,
            FpArithOp::Sub => dst - src,
            FpArithOp::SubR => src - dst,
            FpArithOp::Mul => dst * src,
            FpArithOp::Div => dst / src,
            FpArithOp::DivR => src / dst,
        }
    }

    /// Mnemonic stem (`fadd`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpArithOp::Add => "fadd",
            FpArithOp::Sub => "fsub",
            FpArithOp::SubR => "fsubr",
            FpArithOp::Mul => "fmul",
            FpArithOp::Div => "fdiv",
            FpArithOp::DivR => "fdivr",
        }
    }
}

/// Forms of x87 arithmetic instructions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpArithForm {
    /// `op ST(0), m32/m64`.
    St0Mem(Size2, Addr),
    /// `op ST(0), ST(i)`.
    St0Sti(u8),
    /// `op ST(i), ST(0)`; `pop` selects the `...P` form.
    StiSt0 {
        /// Destination stack register index.
        i: u8,
        /// Pop the stack after the operation.
        pop: bool,
    },
}

/// Memory float width (32- or 64-bit).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Size2 {
    /// 32-bit (single precision).
    S,
    /// 64-bit (double precision).
    D,
}

impl Size2 {
    /// Number of bytes.
    pub fn bytes(self) -> u32 {
        match self {
            Size2::S => 4,
            Size2::D => 8,
        }
    }
}

/// MMX packed ALU operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MmxOp {
    /// Packed add, lane width in bytes (1, 2, or 4).
    PAdd(u8),
    /// Packed subtract, lane width in bytes.
    PSub(u8),
    /// Bitwise AND.
    Pand,
    /// Bitwise OR.
    Por,
    /// Bitwise XOR.
    Pxor,
    /// Packed 16-bit multiply, low halves.
    Pmullw,
}

impl MmxOp {
    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MmxOp::PAdd(1) => "paddb",
            MmxOp::PAdd(2) => "paddw",
            MmxOp::PAdd(_) => "paddd",
            MmxOp::PSub(1) => "psubb",
            MmxOp::PSub(2) => "psubw",
            MmxOp::PSub(_) => "psubd",
            MmxOp::Pand => "pand",
            MmxOp::Por => "por",
            MmxOp::Pxor => "pxor",
            MmxOp::Pmullw => "pmullw",
        }
    }
}

/// An MMX register-or-memory source.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MmM {
    /// An MMX register.
    Reg(Mm),
    /// A 64-bit memory operand.
    Mem(Addr),
}

/// An XMM register-or-memory source.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum XmmM {
    /// An XMM register.
    Reg(Xmm),
    /// A memory operand (width depends on the instruction).
    Mem(Addr),
}

/// SSE arithmetic operations (scalar-single or packed-single selected by
/// the instruction).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SseOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl SseOp {
    /// The 0F-page opcode byte for the packed form (the scalar form adds
    /// an `F3` prefix).
    pub fn opcode(self) -> u8 {
        match self {
            SseOp::Add => 0x58,
            SseOp::Mul => 0x59,
            SseOp::Sub => 0x5C,
            SseOp::Min => 0x5D,
            SseOp::Div => 0x5E,
            SseOp::Max => 0x5F,
        }
    }

    /// Applies the operation to one lane.
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            SseOp::Add => a + b,
            SseOp::Sub => a - b,
            SseOp::Mul => a * b,
            SseOp::Div => a / b,
            // IA-32 MIN/MAX return the second operand on ties/NaN.
            SseOp::Min => {
                if a < b {
                    a
                } else {
                    b
                }
            }
            SseOp::Max => {
                if a > b {
                    a
                } else {
                    b
                }
            }
        }
    }

    /// Mnemonic stem.
    pub fn mnemonic(self) -> &'static str {
        match self {
            SseOp::Add => "add",
            SseOp::Sub => "sub",
            SseOp::Mul => "mul",
            SseOp::Div => "div",
            SseOp::Min => "min",
            SseOp::Max => "max",
        }
    }
}

/// A decoded IA-32 instruction.
///
/// Relative branch targets (`Jmp`, `Jcc`, `Call`) hold the *absolute*
/// target address; the encoder converts back to relative displacements.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Inst {
    /// Two-operand ALU: `dst = dst op src` (register/memory destination).
    Alu {
        /// Operation.
        op: AluOp,
        /// Operand size.
        size: Size,
        /// Destination (also first source).
        dst: Rm,
        /// Second source.
        src: RmI,
    },
    /// ALU with register destination and memory source: `reg = reg op [m]`.
    AluRM {
        /// Operation.
        op: AluOp,
        /// Operand size.
        size: Size,
        /// Destination register.
        dst: Gpr,
        /// Memory source.
        src: Addr,
    },
    /// `TEST` — AND that only sets flags.
    Test {
        /// Operand size.
        size: Size,
        /// First operand.
        a: Rm,
        /// Second operand (register or immediate).
        b: RmI,
    },
    /// `MOV dst, src`.
    Mov {
        /// Operand size.
        size: Size,
        /// Destination.
        dst: Rm,
        /// Source.
        src: RmI,
    },
    /// `MOV reg, [mem]` (load form, distinguished for encoding fidelity).
    MovLoad {
        /// Operand size.
        size: Size,
        /// Destination register.
        dst: Gpr,
        /// Source address.
        src: Addr,
    },
    /// `MOVZX r32, r/m8|16`.
    Movzx {
        /// Destination (always 32-bit here).
        dst: Gpr,
        /// Source width (`B` or `W`).
        src_size: Size,
        /// Source.
        src: Rm,
    },
    /// `MOVSX r32, r/m8|16`.
    Movsx {
        /// Destination.
        dst: Gpr,
        /// Source width (`B` or `W`).
        src_size: Size,
        /// Source.
        src: Rm,
    },
    /// `LEA r32, [addr]`.
    Lea {
        /// Destination register.
        dst: Gpr,
        /// Address expression (not dereferenced).
        addr: Addr,
    },
    /// `XCHG r, r/m`.
    Xchg {
        /// Operand size.
        size: Size,
        /// Register operand.
        reg: Gpr,
        /// Register-or-memory operand.
        rm: Rm,
    },
    /// `PUSH r/m/imm` (32-bit operand).
    Push {
        /// Value pushed.
        src: RmI,
    },
    /// `POP r/m` (32-bit operand).
    Pop {
        /// Destination.
        dst: Rm,
    },
    /// `INC`/`DEC r/m` (CF preserved).
    IncDec {
        /// True for `INC`.
        inc: bool,
        /// Operand size.
        size: Size,
        /// Destination.
        dst: Rm,
    },
    /// `NEG r/m`.
    Neg {
        /// Operand size.
        size: Size,
        /// Destination.
        dst: Rm,
    },
    /// `NOT r/m` (flags unaffected).
    Not {
        /// Operand size.
        size: Size,
        /// Destination.
        dst: Rm,
    },
    /// Shift `r/m` by an immediate or `CL`.
    Shift {
        /// Operation.
        op: ShiftOp,
        /// Operand size.
        size: Size,
        /// Destination.
        dst: Rm,
        /// Count.
        count: ShiftCount,
    },
    /// `IMUL r32, r/m32` (two-operand form).
    ImulRm {
        /// Destination register.
        dst: Gpr,
        /// Source.
        src: Rm,
    },
    /// `IMUL r32, r/m32, imm` (three-operand form).
    ImulRmImm {
        /// Destination register.
        dst: Gpr,
        /// Source.
        src: Rm,
        /// Immediate multiplier.
        imm: i32,
    },
    /// One-operand `MUL`/`IMUL`/`DIV`/`IDIV` on `EDX:EAX`.
    MulDiv {
        /// Operation.
        op: MulDivOp,
        /// Operand size.
        size: Size,
        /// Source operand.
        src: Rm,
    },
    /// `CDQ` — sign-extend `EAX` into `EDX`.
    Cdq,
    /// `CWDE` — sign-extend `AX` into `EAX`.
    Cwde,
    /// Unconditional relative jump; `target` is absolute.
    Jmp {
        /// Absolute target address.
        target: u32,
    },
    /// Indirect jump through a register or memory slot.
    JmpInd {
        /// Target operand.
        src: Rm,
    },
    /// Conditional relative jump; `target` is absolute.
    Jcc {
        /// Condition.
        cond: Cond,
        /// Absolute target address.
        target: u32,
    },
    /// `CALL rel32`; `target` is absolute.
    Call {
        /// Absolute target address.
        target: u32,
    },
    /// Indirect call.
    CallInd {
        /// Target operand.
        src: Rm,
    },
    /// `RET` with optional stack adjustment (`RET imm16`).
    Ret {
        /// Extra bytes popped after the return address.
        pop: u16,
    },
    /// `SETcc r/m8`.
    Setcc {
        /// Condition.
        cond: Cond,
        /// Byte destination.
        dst: Rm,
    },
    /// `CMOVcc r32, r/m32`.
    Cmovcc {
        /// Condition.
        cond: Cond,
        /// Destination register.
        dst: Gpr,
        /// Source.
        src: Rm,
    },
    /// `NOP`.
    Nop,
    /// `HLT` — stops the program (used as "exit" in bare-metal tests).
    Hlt,
    /// `UD2` — guaranteed invalid opcode.
    Ud2,
    /// `INT imm8` — software interrupt (0x80 = simulated Linux syscall).
    Int {
        /// Interrupt vector.
        vector: u8,
    },
    /// `MOVS` (`ESI`→`EDI`), optionally `REP`-prefixed.
    Movs {
        /// Element size.
        size: Size,
        /// True when `REP`-prefixed (count in `ECX`).
        rep: bool,
    },
    /// `STOS` (store `AL`/`AX`/`EAX` at `EDI`), optionally `REP`-prefixed.
    Stos {
        /// Element size.
        size: Size,
        /// True when `REP`-prefixed.
        rep: bool,
    },
    // ---- x87 ----
    /// `FLD` — push a value onto the FP stack.
    Fld {
        /// Source.
        src: FpOperand,
    },
    /// `FST`/`FSTP` — store `ST(0)`.
    Fst {
        /// Destination.
        dst: FpOperand,
        /// Pop after storing.
        pop: bool,
    },
    /// `FILD m32` — push an integer converted to FP.
    Fild {
        /// Source address of a 32-bit signed integer.
        src: Addr,
    },
    /// `FISTP m32` — store `ST(0)` as a truncated 32-bit integer and pop.
    Fistp {
        /// Destination address.
        dst: Addr,
    },
    /// x87 arithmetic.
    Farith {
        /// Operation.
        op: FpArithOp,
        /// Form (operand pattern).
        form: FpArithForm,
    },
    /// `FCHS` — negate `ST(0)`.
    Fchs,
    /// `FABS`.
    Fabs,
    /// `FSQRT`.
    Fsqrt,
    /// `FXCH ST(i)` — exchange `ST(0)` and `ST(i)`.
    Fxch {
        /// Stack register index.
        i: u8,
    },
    /// `FLD1` — push 1.0.
    Fld1,
    /// `FLDZ` — push 0.0.
    Fldz,
    /// `FCOMI`/`FCOMIP`/`FUCOMI`/`FUCOMIP` — compare `ST(0)` with `ST(i)`
    /// and set `ZF`/`PF`/`CF` directly.
    Fcomi {
        /// Stack register index compared against.
        i: u8,
        /// Pop after comparing.
        pop: bool,
        /// Unordered form (`FUCOMI*`).
        unordered: bool,
    },
    // ---- MMX ----
    /// `MOVD mm, r/m32` or `MOVD r/m32, mm`.
    Movd {
        /// MMX register.
        mm: Mm,
        /// GPR-or-memory operand.
        rm: Rm,
        /// True when the MMX register is the destination.
        to_mm: bool,
    },
    /// `MOVQ mm, mm/m64` or `MOVQ mm/m64, mm`.
    Movq {
        /// MMX register.
        mm: Mm,
        /// MMX-or-memory operand.
        src: MmM,
        /// True when `mm` is the destination.
        to_mm: bool,
    },
    /// Packed MMX ALU operation.
    PAlu {
        /// Operation.
        op: MmxOp,
        /// Destination MMX register.
        dst: Mm,
        /// Source.
        src: MmM,
    },
    /// `EMMS` — leave MMX mode (empties the FP tag word).
    Emms,
    // ---- SSE ----
    /// `MOVSS xmm, m32/xmm` or `MOVSS m32, xmm` (scalar single move).
    Movss {
        /// XMM register.
        xmm: Xmm,
        /// Source/destination.
        rm: XmmM,
        /// True when `xmm` is the destination.
        to_xmm: bool,
    },
    /// `MOVAPS`/`MOVUPS` — 128-bit move; `aligned` selects `MOVAPS`.
    Movps {
        /// XMM register.
        xmm: Xmm,
        /// Source/destination.
        rm: XmmM,
        /// True when `xmm` is the destination.
        to_xmm: bool,
        /// `MOVAPS` (requires 16-byte alignment) vs `MOVUPS`.
        aligned: bool,
    },
    /// SSE arithmetic (`ADDSS`, `MULPS`, …).
    SseArith {
        /// Operation.
        op: SseOp,
        /// Scalar (`SS`) vs packed (`PS`).
        scalar: bool,
        /// Destination register.
        dst: Xmm,
        /// Source.
        src: XmmM,
    },
    /// `XORPS`.
    Xorps {
        /// Destination register.
        dst: Xmm,
        /// Source.
        src: XmmM,
    },
    /// `SQRTSS`.
    Sqrtss {
        /// Destination register.
        dst: Xmm,
        /// Source.
        src: XmmM,
    },
    /// `CVTSI2SS xmm, r/m32`.
    Cvtsi2ss {
        /// Destination register.
        dst: Xmm,
        /// Integer source.
        src: Rm,
    },
    /// `CVTTSS2SI r32, xmm/m32` (truncating).
    Cvttss2si {
        /// Destination GPR.
        dst: Gpr,
        /// Source.
        src: XmmM,
    },
    /// `UCOMISS`/`COMISS` — scalar compare setting `ZF`/`PF`/`CF`.
    Ucomiss {
        /// First operand.
        a: Xmm,
        /// Second operand.
        b: XmmM,
        /// Signaling (`COMISS`) form.
        signaling: bool,
    },
}

impl Inst {
    /// True if this instruction ends a basic block (any control transfer,
    /// software interrupt, or halt).
    pub fn ends_block(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. }
                | Inst::JmpInd { .. }
                | Inst::Jcc { .. }
                | Inst::Call { .. }
                | Inst::CallInd { .. }
                | Inst::Ret { .. }
                | Inst::Int { .. }
                | Inst::Hlt
                | Inst::Ud2
        )
    }

    /// The EFLAGS bits this instruction *reads*.
    pub fn flags_read(&self) -> u32 {
        use crate::flags;
        match self {
            Inst::Alu { op, .. } | Inst::AluRM { op, .. } if op.reads_carry() => flags::CF,
            Inst::Jcc { cond, .. } | Inst::Setcc { cond, .. } | Inst::Cmovcc { cond, .. } => {
                cond.flags_read()
            }
            Inst::Movs { .. } | Inst::Stos { .. } => flags::DF,
            _ => 0,
        }
    }

    /// The EFLAGS bits this instruction *may* write (used by the
    /// translator to decide what to materialize). A superset of
    /// [`Inst::flags_written`].
    pub fn flags_written_maybe(&self) -> u32 {
        match self {
            Inst::Shift { .. } => crate::flags::STATUS,
            other => other.flags_written(),
        }
    }

    /// The EFLAGS bits this instruction *must* write (the liveness KILL
    /// set: bits guaranteed to be overwritten on every execution).
    pub fn flags_written(&self) -> u32 {
        use crate::flags;
        match self {
            Inst::Alu { .. } | Inst::AluRM { .. } | Inst::Test { .. } | Inst::Neg { .. } => {
                flags::STATUS
            }
            Inst::IncDec { .. } => flags::STATUS & !flags::CF,
            // Shifts only write flags for a non-zero (masked) count;
            // `flags_written` is the liveness KILL set, so it must be
            // the *must-write* set: zero-count and CL-count (dynamic)
            // shifts report no definite writes.
            Inst::Shift { count, .. } => match count {
                ShiftCount::Imm(c) if c & 0x1F != 0 => flags::STATUS,
                _ => 0,
            },
            Inst::ImulRm { .. } | Inst::ImulRmImm { .. } => flags::STATUS,
            // DIV/IDIV leave flags architecturally undefined; we define
            // them as "preserved" consistently in the interpreter and
            // the translator.
            Inst::MulDiv { op, .. } => match op {
                MulDivOp::Mul | MulDivOp::Imul => flags::STATUS,
                MulDivOp::Div | MulDivOp::Idiv => 0,
            },
            Inst::Fcomi { .. } | Inst::Ucomiss { .. } => flags::ZF | flags::PF | flags::CF,
            _ => 0,
        }
    }

    /// True if executing this instruction may fault (memory access, divide,
    /// FP stack operation, or explicit trap).
    pub fn can_fault(&self) -> bool {
        if self.mem_operands().is_some() {
            return true;
        }
        matches!(
            self,
            Inst::MulDiv {
                op: MulDivOp::Div | MulDivOp::Idiv,
                ..
            } | Inst::Push { .. }
                | Inst::Pop { .. }
                | Inst::Call { .. }
                | Inst::CallInd { .. }
                | Inst::Ret { .. }
                | Inst::Movs { .. }
                | Inst::Stos { .. }
                | Inst::Ud2
                | Inst::Int { .. }
                | Inst::Fld { .. }
                | Inst::Fst { .. }
                | Inst::Fild { .. }
                | Inst::Fistp { .. }
                | Inst::Farith { .. }
                | Inst::Fxch { .. }
                | Inst::Fld1
                | Inst::Fldz
                | Inst::Fcomi { .. }
        )
    }

    /// The memory address expression this instruction references, if any
    /// (the first one, for instructions with a single explicit memory
    /// operand; stack and string accesses are implicit and excluded).
    pub fn mem_operands(&self) -> Option<Addr> {
        fn rm(x: &Rm) -> Option<Addr> {
            x.mem()
        }
        fn rmi(x: &RmI) -> Option<Addr> {
            x.mem()
        }
        match self {
            Inst::Alu { dst, src, .. } => rm(dst).or_else(|| rmi(src)),
            Inst::AluRM { src, .. } => Some(*src),
            Inst::Test { a, b, .. } => rm(a).or_else(|| rmi(b)),
            Inst::Mov { dst, src, .. } => rm(dst).or_else(|| rmi(src)),
            Inst::MovLoad { src, .. } => Some(*src),
            Inst::Movzx { src, .. } | Inst::Movsx { src, .. } => rm(src),
            Inst::Xchg { rm: r, .. } => rm(r),
            Inst::Push { src } => rmi(src),
            Inst::Pop { dst } => rm(dst),
            Inst::IncDec { dst, .. } | Inst::Neg { dst, .. } | Inst::Not { dst, .. } => rm(dst),
            Inst::Shift { dst, .. } => rm(dst),
            Inst::ImulRm { src, .. } | Inst::ImulRmImm { src, .. } => rm(src),
            Inst::MulDiv { src, .. } => rm(src),
            Inst::JmpInd { src } | Inst::CallInd { src } => rm(src),
            Inst::Setcc { dst, .. } => rm(dst),
            Inst::Cmovcc { src, .. } => rm(src),
            Inst::Fld { src } => match src {
                FpOperand::M32(a) | FpOperand::M64(a) => Some(*a),
                FpOperand::St(_) => None,
            },
            Inst::Fst { dst, .. } => match dst {
                FpOperand::M32(a) | FpOperand::M64(a) => Some(*a),
                FpOperand::St(_) => None,
            },
            Inst::Fild { src } => Some(*src),
            Inst::Fistp { dst } => Some(*dst),
            Inst::Farith {
                form: FpArithForm::St0Mem(_, a),
                ..
            } => Some(*a),
            Inst::Movd { rm: r, .. } => rm(r),
            Inst::Movq { src, .. } => match src {
                MmM::Mem(a) => Some(*a),
                MmM::Reg(_) => None,
            },
            Inst::PAlu { src, .. } => match src {
                MmM::Mem(a) => Some(*a),
                MmM::Reg(_) => None,
            },
            Inst::Movss { rm: r, .. } | Inst::Movps { rm: r, .. } => match r {
                XmmM::Mem(a) => Some(*a),
                XmmM::Reg(_) => None,
            },
            Inst::SseArith { src, .. }
            | Inst::Xorps { src, .. }
            | Inst::Sqrtss { src, .. }
            | Inst::Cvttss2si { src, .. } => match src {
                XmmM::Mem(a) => Some(*a),
                XmmM::Reg(_) => None,
            },
            Inst::Cvtsi2ss { src, .. } => rm(src),
            Inst::Ucomiss { b, .. } => match b {
                XmmM::Mem(a) => Some(*a),
                XmmM::Reg(_) => None,
            },
            _ => None,
        }
    }

    /// The direct branch targets `(taken, fallthrough_needed)` if this is
    /// a direct control transfer.
    pub fn direct_target(&self) -> Option<u32> {
        match self {
            Inst::Jmp { target } | Inst::Jcc { target, .. } | Inst::Call { target } => {
                Some(*target)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn sz(s: Size) -> &'static str {
            match s {
                Size::B => "byte",
                Size::W => "word",
                Size::D => "dword",
            }
        }
        match self {
            Inst::Alu { op, size, dst, src } => {
                write!(f, "{} {} {dst}, {src}", op.mnemonic(), sz(*size))
            }
            Inst::AluRM { op, size, dst, src } => {
                write!(f, "{} {} {dst}, {src}", op.mnemonic(), sz(*size))
            }
            Inst::Test { size, a, b } => write!(f, "test {} {a}, {b}", sz(*size)),
            Inst::Mov { size, dst, src } => write!(f, "mov {} {dst}, {src}", sz(*size)),
            Inst::MovLoad { size, dst, src } => write!(f, "mov {} {dst}, {src}", sz(*size)),
            Inst::Movzx { dst, src_size, src } => {
                write!(f, "movzx {dst}, {} {src}", sz(*src_size))
            }
            Inst::Movsx { dst, src_size, src } => {
                write!(f, "movsx {dst}, {} {src}", sz(*src_size))
            }
            Inst::Lea { dst, addr } => write!(f, "lea {dst}, {addr}"),
            Inst::Xchg { size, reg, rm } => write!(f, "xchg {} {reg}, {rm}", sz(*size)),
            Inst::Push { src } => write!(f, "push {src}"),
            Inst::Pop { dst } => write!(f, "pop {dst}"),
            Inst::IncDec { inc, size, dst } => {
                write!(
                    f,
                    "{} {} {dst}",
                    if *inc { "inc" } else { "dec" },
                    sz(*size)
                )
            }
            Inst::Neg { size, dst } => write!(f, "neg {} {dst}", sz(*size)),
            Inst::Not { size, dst } => write!(f, "not {} {dst}", sz(*size)),
            Inst::Shift {
                op,
                size,
                dst,
                count,
            } => match count {
                ShiftCount::Imm(i) => write!(f, "{} {} {dst}, {i}", op.mnemonic(), sz(*size)),
                ShiftCount::Cl => write!(f, "{} {} {dst}, cl", op.mnemonic(), sz(*size)),
            },
            Inst::ImulRm { dst, src } => write!(f, "imul {dst}, {src}"),
            Inst::ImulRmImm { dst, src, imm } => write!(f, "imul {dst}, {src}, {imm:#x}"),
            Inst::MulDiv { op, size, src } => write!(f, "{} {} {src}", op.mnemonic(), sz(*size)),
            Inst::Cdq => write!(f, "cdq"),
            Inst::Cwde => write!(f, "cwde"),
            Inst::Jmp { target } => write!(f, "jmp {target:#x}"),
            Inst::JmpInd { src } => write!(f, "jmp {src}"),
            Inst::Jcc { cond, target } => write!(f, "j{cond} {target:#x}"),
            Inst::Call { target } => write!(f, "call {target:#x}"),
            Inst::CallInd { src } => write!(f, "call {src}"),
            Inst::Ret { pop } => {
                if *pop == 0 {
                    write!(f, "ret")
                } else {
                    write!(f, "ret {pop:#x}")
                }
            }
            Inst::Setcc { cond, dst } => write!(f, "set{cond} {dst}"),
            Inst::Cmovcc { cond, dst, src } => write!(f, "cmov{cond} {dst}, {src}"),
            Inst::Nop => write!(f, "nop"),
            Inst::Hlt => write!(f, "hlt"),
            Inst::Ud2 => write!(f, "ud2"),
            Inst::Int { vector } => write!(f, "int {vector:#x}"),
            Inst::Movs { size, rep } => {
                write!(f, "{}movs{}", if *rep { "rep " } else { "" }, sz(*size))
            }
            Inst::Stos { size, rep } => {
                write!(f, "{}stos{}", if *rep { "rep " } else { "" }, sz(*size))
            }
            Inst::Fld { src } => match src {
                FpOperand::M32(a) => write!(f, "fld dword {a}"),
                FpOperand::M64(a) => write!(f, "fld qword {a}"),
                FpOperand::St(i) => write!(f, "fld st({i})"),
            },
            Inst::Fst { dst, pop } => {
                let m = if *pop { "fstp" } else { "fst" };
                match dst {
                    FpOperand::M32(a) => write!(f, "{m} dword {a}"),
                    FpOperand::M64(a) => write!(f, "{m} qword {a}"),
                    FpOperand::St(i) => write!(f, "{m} st({i})"),
                }
            }
            Inst::Fild { src } => write!(f, "fild dword {src}"),
            Inst::Fistp { dst } => write!(f, "fistp dword {dst}"),
            Inst::Farith { op, form } => match form {
                FpArithForm::St0Mem(Size2::S, a) => write!(f, "{} dword {a}", op.mnemonic()),
                FpArithForm::St0Mem(Size2::D, a) => write!(f, "{} qword {a}", op.mnemonic()),
                FpArithForm::St0Sti(i) => write!(f, "{} st(0), st({i})", op.mnemonic()),
                FpArithForm::StiSt0 { i, pop } => {
                    if *pop {
                        write!(f, "{}p st({i}), st(0)", op.mnemonic())
                    } else {
                        write!(f, "{} st({i}), st(0)", op.mnemonic())
                    }
                }
            },
            Inst::Fchs => write!(f, "fchs"),
            Inst::Fabs => write!(f, "fabs"),
            Inst::Fsqrt => write!(f, "fsqrt"),
            Inst::Fxch { i } => write!(f, "fxch st({i})"),
            Inst::Fld1 => write!(f, "fld1"),
            Inst::Fldz => write!(f, "fldz"),
            Inst::Fcomi { i, pop, unordered } => {
                let u = if *unordered { "u" } else { "" };
                let p = if *pop { "p" } else { "" };
                write!(f, "f{u}comi{p} st(0), st({i})")
            }
            Inst::Movd { mm, rm, to_mm } => {
                if *to_mm {
                    write!(f, "movd {mm}, {rm}")
                } else {
                    write!(f, "movd {rm}, {mm}")
                }
            }
            Inst::Movq { mm, src, to_mm } => {
                let s = match src {
                    MmM::Reg(m) => m.to_string(),
                    MmM::Mem(a) => a.to_string(),
                };
                if *to_mm {
                    write!(f, "movq {mm}, {s}")
                } else {
                    write!(f, "movq {s}, {mm}")
                }
            }
            Inst::PAlu { op, dst, src } => {
                let s = match src {
                    MmM::Reg(m) => m.to_string(),
                    MmM::Mem(a) => a.to_string(),
                };
                write!(f, "{} {dst}, {s}", op.mnemonic())
            }
            Inst::Emms => write!(f, "emms"),
            Inst::Movss { xmm, rm, to_xmm } => {
                let s = match rm {
                    XmmM::Reg(x) => x.to_string(),
                    XmmM::Mem(a) => a.to_string(),
                };
                if *to_xmm {
                    write!(f, "movss {xmm}, {s}")
                } else {
                    write!(f, "movss {s}, {xmm}")
                }
            }
            Inst::Movps {
                xmm,
                rm,
                to_xmm,
                aligned,
            } => {
                let m = if *aligned { "movaps" } else { "movups" };
                let s = match rm {
                    XmmM::Reg(x) => x.to_string(),
                    XmmM::Mem(a) => a.to_string(),
                };
                if *to_xmm {
                    write!(f, "{m} {xmm}, {s}")
                } else {
                    write!(f, "{m} {s}, {xmm}")
                }
            }
            Inst::SseArith {
                op,
                scalar,
                dst,
                src,
            } => {
                let s = match src {
                    XmmM::Reg(x) => x.to_string(),
                    XmmM::Mem(a) => a.to_string(),
                };
                write!(
                    f,
                    "{}{} {dst}, {s}",
                    op.mnemonic(),
                    if *scalar { "ss" } else { "ps" }
                )
            }
            Inst::Xorps { dst, src } => {
                let s = match src {
                    XmmM::Reg(x) => x.to_string(),
                    XmmM::Mem(a) => a.to_string(),
                };
                write!(f, "xorps {dst}, {s}")
            }
            Inst::Sqrtss { dst, src } => {
                let s = match src {
                    XmmM::Reg(x) => x.to_string(),
                    XmmM::Mem(a) => a.to_string(),
                };
                write!(f, "sqrtss {dst}, {s}")
            }
            Inst::Cvtsi2ss { dst, src } => write!(f, "cvtsi2ss {dst}, {src}"),
            Inst::Cvttss2si { dst, src } => {
                let s = match src {
                    XmmM::Reg(x) => x.to_string(),
                    XmmM::Mem(a) => a.to_string(),
                };
                write!(f, "cvttss2si {dst}, {s}")
            }
            Inst::Ucomiss { a, b, signaling } => {
                let s = match b {
                    XmmM::Reg(x) => x.to_string(),
                    XmmM::Mem(a) => a.to_string(),
                };
                write!(f, "{}comiss {a}, {s}", if *signaling { "" } else { "u" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::{EAX, EBX, ECX, ESP};

    #[test]
    fn addr_display() {
        let a = Addr::base_index(EAX, EBX, 4, 16);
        assert_eq!(a.to_string(), "[eax+ebx*4+0x10]");
        assert_eq!(Addr::abs(0x1000).to_string(), "[0x1000]");
        assert_eq!(Addr::base_disp(ECX, -8).to_string(), "[ecx-0x8]");
    }

    #[test]
    #[should_panic(expected = "ESP cannot be an index")]
    fn esp_index_rejected() {
        Addr::base(EAX).with_index(ESP, 2);
    }

    #[test]
    #[should_panic(expected = "invalid scale")]
    fn bad_scale_rejected() {
        Addr::base(EAX).with_index(EBX, 3);
    }

    #[test]
    fn ends_block() {
        assert!(Inst::Jmp { target: 0 }.ends_block());
        assert!(Inst::Ret { pop: 0 }.ends_block());
        assert!(Inst::Hlt.ends_block());
        assert!(!Inst::Nop.ends_block());
        assert!(!Inst::Lea {
            dst: EAX,
            addr: Addr::abs(0)
        }
        .ends_block());
    }

    #[test]
    fn flags_read_written() {
        use crate::flags;
        let add = Inst::Alu {
            op: AluOp::Add,
            size: Size::D,
            dst: Rm::Reg(EAX),
            src: RmI::Imm(1),
        };
        assert_eq!(add.flags_written(), flags::STATUS);
        assert_eq!(add.flags_read(), 0);

        let adc = Inst::Alu {
            op: AluOp::Adc,
            size: Size::D,
            dst: Rm::Reg(EAX),
            src: RmI::Imm(1),
        };
        assert_eq!(adc.flags_read(), flags::CF);

        let inc = Inst::IncDec {
            inc: true,
            size: Size::D,
            dst: Rm::Reg(EAX),
        };
        assert_eq!(inc.flags_written() & flags::CF, 0);

        let je = Inst::Jcc {
            cond: Cond::E,
            target: 0,
        };
        assert_eq!(je.flags_read(), flags::ZF);
    }

    #[test]
    fn mem_operand_extraction() {
        let i = Inst::Mov {
            size: Size::D,
            dst: Rm::Mem(Addr::abs(0x100)),
            src: RmI::Reg(EAX),
        };
        assert_eq!(i.mem_operands(), Some(Addr::abs(0x100)));
        assert!(i.can_fault());

        let r = Inst::Mov {
            size: Size::D,
            dst: Rm::Reg(EAX),
            src: RmI::Imm(0),
        };
        assert_eq!(r.mem_operands(), None);
        assert!(!r.can_fault());
    }

    #[test]
    fn display_smoke() {
        let i = Inst::Alu {
            op: AluOp::Add,
            size: Size::D,
            dst: Rm::Reg(EAX),
            src: RmI::Imm(4),
        };
        assert_eq!(i.to_string(), "add dword eax, 0x4");
        assert_eq!(
            Inst::Jcc {
                cond: Cond::Ne,
                target: 0x8000
            }
            .to_string(),
            "jne 0x8000"
        );
    }
}
