//! Reference IA-32 interpreter.
//!
//! Executes decoded instructions directly against ([`Cpu`],
//! [`GuestMem`]). This is the semantic oracle for the whole project: the
//! translator's differential tests compare final state (and faulting
//! state, for precise-exception tests) against this interpreter.
//!
//! Faults are precise: when [`Interp::step`] returns a [`Trap`], no
//! architectural state of the faulting instruction has been committed
//! (with the documented exception of `REP` string instructions, which
//! are restartable per element, exactly as on hardware).

use crate::cpu::Cpu;
use crate::decode::{decode, DecodeError};
use crate::flags::{self, Size};
use crate::fpu::FpuFault;
use crate::inst::*;
use crate::mem::{GuestMem, MemFault};
use crate::regs::{Gpr, ECX, EDI, EDX, ESI};
use crate::timing::Timing;

/// An architectural fault raised by an instruction.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Fault {
    /// Memory access fault (page not present / protection).
    Mem(MemFault),
    /// `#DE` — divide error (divide by zero or quotient overflow).
    Divide,
    /// x87 stack fault.
    FpStack(FpuFault),
    /// `#UD` — invalid or unsupported opcode.
    InvalidOpcode,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Mem(m) => write!(f, "{m}"),
            Fault::Divide => write!(f, "divide error"),
            Fault::FpStack(e) => write!(f, "{e}"),
            Fault::InvalidOpcode => write!(f, "invalid opcode"),
        }
    }
}

/// A fault together with the EIP of the faulting instruction.
///
/// The CPU state at trap time is the precise state *before* the faulting
/// instruction executed.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Trap {
    /// The fault.
    pub fault: Fault,
    /// EIP of the instruction that faulted.
    pub eip: u32,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at eip={:#x}", self.fault, self.eip)
    }
}

impl std::error::Error for Trap {}

/// Result of a successful step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Event {
    /// Normal completion; continue at the new EIP.
    Continue,
    /// A software interrupt was executed (EIP already advanced past it).
    Syscall {
        /// The interrupt vector (`0x80` = Linux-style syscall).
        vector: u8,
    },
    /// `HLT` executed.
    Halt,
}

/// Execution statistics for the interpreter.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct InterpStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Misaligned data accesses observed.
    pub misaligned: u64,
    /// Accumulated cycles under the IA-32 timing model.
    pub cycles: u64,
}

/// The reference interpreter.
#[derive(Debug)]
pub struct Interp {
    /// Architectural state.
    pub cpu: Cpu,
    /// Statistics / cycle accounting.
    pub stats: InterpStats,
    timing: Timing,
}

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

type Exec<T> = Result<T, Fault>;

impl Interp {
    /// New interpreter with default (Xeon-like) timing.
    pub fn new() -> Interp {
        Interp {
            cpu: Cpu::new(),
            stats: InterpStats::default(),
            timing: Timing::default(),
        }
    }

    /// New interpreter with explicit timing parameters.
    pub fn with_timing(timing: Timing) -> Interp {
        Interp {
            cpu: Cpu::new(),
            stats: InterpStats::default(),
            timing,
        }
    }

    /// The timing model in use.
    pub fn timing(&self) -> &Timing {
        &self.timing
    }

    /// Computes the effective address of `a`.
    pub fn ea(&self, a: &Addr) -> u32 {
        let mut v = a.disp as u32;
        if let Some(b) = a.base {
            v = v.wrapping_add(self.cpu.gpr[b.num() as usize]);
        }
        if let Some((i, s)) = a.index {
            v = v.wrapping_add(self.cpu.gpr[i.num() as usize].wrapping_mul(s as u32));
        }
        v
    }

    fn load(&mut self, mem: &GuestMem, addr: u32, size: Size) -> Exec<u32> {
        self.note_align(addr, size.bytes());
        mem.read(addr as u64, size.bytes())
            .map(|v| v as u32)
            .map_err(Fault::Mem)
    }

    fn store(&mut self, mem: &mut GuestMem, addr: u32, size: Size, v: u32) -> Exec<()> {
        self.note_align(addr, size.bytes());
        mem.write(addr as u64, size.bytes(), v as u64)
            .map_err(Fault::Mem)
    }

    fn load64(&mut self, mem: &GuestMem, addr: u32) -> Exec<u64> {
        self.note_align(addr, 8);
        mem.read(addr as u64, 8).map_err(Fault::Mem)
    }

    fn store64(&mut self, mem: &mut GuestMem, addr: u32, v: u64) -> Exec<()> {
        self.note_align(addr, 8);
        mem.write(addr as u64, 8, v).map_err(Fault::Mem)
    }

    fn note_align(&mut self, addr: u32, bytes: u32) {
        if bytes > 1 && !addr.is_multiple_of(bytes) {
            self.stats.misaligned += 1;
            self.stats.cycles += self.timing.misalign_penalty as u64;
        }
    }

    fn read_rm(&mut self, mem: &GuestMem, rm: &Rm, size: Size) -> Exec<u32> {
        match rm {
            Rm::Reg(r) => Ok(self.cpu.read(*r, size)),
            Rm::Mem(a) => {
                let ea = self.ea(a);
                self.load(mem, ea, size)
            }
        }
    }

    fn read_rmi(&mut self, mem: &GuestMem, rmi: &RmI, size: Size) -> Exec<u32> {
        match rmi {
            RmI::Reg(r) => Ok(self.cpu.read(*r, size)),
            RmI::Mem(a) => {
                let ea = self.ea(a);
                self.load(mem, ea, size)
            }
            RmI::Imm(i) => Ok(size.trunc(*i as u32)),
        }
    }

    fn write_rm(&mut self, mem: &mut GuestMem, rm: &Rm, size: Size, v: u32) -> Exec<()> {
        match rm {
            Rm::Reg(r) => {
                self.cpu.write(*r, size, v);
                Ok(())
            }
            Rm::Mem(a) => {
                let ea = self.ea(a);
                self.store(mem, ea, size, v)
            }
        }
    }

    fn push32(&mut self, mem: &mut GuestMem, v: u32) -> Exec<()> {
        let new_esp = self.cpu.esp().wrapping_sub(4);
        // Store first so a fault leaves ESP unchanged (paper Table 1).
        self.store(mem, new_esp, Size::D, v)?;
        self.cpu.set_esp(new_esp);
        Ok(())
    }

    fn pop32(&mut self, mem: &GuestMem) -> Exec<u32> {
        let esp = self.cpu.esp();
        let v = self.load(mem, esp, Size::D)?;
        self.cpu.set_esp(esp.wrapping_add(4));
        Ok(v)
    }

    fn fp_read(&mut self, mem: &GuestMem, op: &FpOperand) -> Exec<f64> {
        match op {
            FpOperand::M32(a) => {
                let ea = self.ea(a);
                let bits = self.load(mem, ea, Size::D)?;
                Ok(f32::from_bits(bits) as f64)
            }
            FpOperand::M64(a) => {
                let ea = self.ea(a);
                let bits = self.load64(mem, ea)?;
                Ok(f64::from_bits(bits))
            }
            FpOperand::St(i) => self.cpu.fpu.st(*i).map_err(Fault::FpStack),
        }
    }

    /// Executes one instruction. On `Err`, no state of the instruction
    /// has been committed (`REP` string ops excepted; they are
    /// restartable, with EIP still pointing at the instruction).
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] for any architectural fault.
    pub fn step(&mut self, mem: &mut GuestMem) -> Result<Event, Trap> {
        let eip = self.cpu.eip;
        let trap = |fault| Trap { fault, eip };
        let bytes = mem.fetch(eip as u64, 16).map_err(|e| trap(Fault::Mem(e)))?;
        let (inst, len) = match decode(&bytes, eip) {
            Ok(v) => v,
            Err(DecodeError::Truncated) => {
                return Err(trap(Fault::Mem(MemFault {
                    addr: eip as u64 + bytes.len() as u64,
                    kind: crate::mem::MemFaultKind::Unmapped,
                    write: false,
                })))
            }
            Err(_) => return Err(trap(Fault::InvalidOpcode)),
        };
        self.stats.instructions += 1;
        self.stats.cycles += self.timing.cost(&inst) as u64;
        let next = eip.wrapping_add(len as u32);
        self.exec(mem, &inst, next).map_err(trap)
    }

    fn exec(&mut self, mem: &mut GuestMem, inst: &Inst, next: u32) -> Exec<Event> {
        use flags::STATUS;
        let cpu_eflags = self.cpu.eflags;
        let mut event = Event::Continue;
        let mut new_eip = next;
        match inst {
            Inst::Alu { op, size, dst, src } => {
                let a = self.read_rm(mem, dst, *size)?;
                let b = self.read_rmi(mem, src, *size)?;
                let (r, f) = alu_apply(*op, a, b, cpu_eflags, *size);
                if op.writes_dst() {
                    self.write_rm(mem, dst, *size, r)?;
                }
                self.cpu.set_flags(f, STATUS);
            }
            Inst::AluRM { op, size, dst, src } => {
                let a = self.cpu.read(*dst, *size);
                let ea = self.ea(src);
                let b = self.load(mem, ea, *size)?;
                let (r, f) = alu_apply(*op, a, b, cpu_eflags, *size);
                if op.writes_dst() {
                    self.cpu.write(*dst, *size, r);
                }
                self.cpu.set_flags(f, STATUS);
            }
            Inst::Test { size, a, b } => {
                let x = self.read_rm(mem, a, *size)?;
                let y = self.read_rmi(mem, b, *size)?;
                let r = size.trunc(x & y);
                self.cpu.set_flags(flags::logic(r, *size), STATUS);
            }
            Inst::Mov { size, dst, src } => {
                let v = self.read_rmi(mem, src, *size)?;
                self.write_rm(mem, dst, *size, v)?;
            }
            Inst::MovLoad { size, dst, src } => {
                let ea = self.ea(src);
                let v = self.load(mem, ea, *size)?;
                self.cpu.write(*dst, *size, v);
            }
            Inst::Movzx { dst, src_size, src } => {
                let v = self.read_rm(mem, src, *src_size)?;
                self.cpu.write(*dst, Size::D, v);
            }
            Inst::Movsx { dst, src_size, src } => {
                let v = self.read_rm(mem, src, *src_size)?;
                self.cpu.write(*dst, Size::D, src_size.sext(v) as u32);
            }
            Inst::Lea { dst, addr } => {
                let ea = self.ea(addr);
                self.cpu.write(*dst, Size::D, ea);
            }
            Inst::Xchg { size, reg, rm } => {
                let a = self.cpu.read(*reg, *size);
                let b = self.read_rm(mem, rm, *size)?;
                self.write_rm(mem, rm, *size, a)?;
                self.cpu.write(*reg, *size, b);
            }
            Inst::Push { src } => {
                let v = self.read_rmi(mem, src, Size::D)?;
                self.push32(mem, v)?;
            }
            Inst::Pop { dst } => {
                // Pop to memory: the load happens with the pre-pop ESP,
                // and ESP is updated before the effective address of the
                // destination is evaluated (IA-32 semantics).
                let v = self.pop32(mem)?;
                match self.write_rm(mem, dst, Size::D, v) {
                    Ok(()) => {}
                    Err(e) => {
                        // Undo the ESP update for preciseness.
                        self.cpu.set_esp(self.cpu.esp().wrapping_sub(4));
                        return Err(e);
                    }
                }
            }
            Inst::IncDec { inc, size, dst } => {
                let a = self.read_rm(mem, dst, *size)?;
                let (r, f) = if *inc {
                    (size.trunc(a.wrapping_add(1)), flags::inc(a, *size))
                } else {
                    (size.trunc(a.wrapping_sub(1)), flags::dec(a, *size))
                };
                self.write_rm(mem, dst, *size, r)?;
                self.cpu.set_flags(f, STATUS & !flags::CF);
            }
            Inst::Neg { size, dst } => {
                let a = self.read_rm(mem, dst, *size)?;
                let r = size.trunc(0u32.wrapping_sub(a));
                self.write_rm(mem, dst, *size, r)?;
                self.cpu.set_flags(flags::neg(a, *size), STATUS);
            }
            Inst::Not { size, dst } => {
                let a = self.read_rm(mem, dst, *size)?;
                self.write_rm(mem, dst, *size, size.trunc(!a))?;
            }
            Inst::Shift {
                op,
                size,
                dst,
                count,
            } => {
                let a = self.read_rm(mem, dst, *size)?;
                let c = match count {
                    ShiftCount::Imm(i) => *i as u32,
                    ShiftCount::Cl => self.cpu.gpr[1] & 0xFF,
                } & 0x1F;
                if c != 0 {
                    let (r, f) = match op {
                        ShiftOp::Shl => (size.trunc(a << c.min(31)), flags::shl(a, c, *size)),
                        ShiftOp::Shr => {
                            let r = if c >= size.bits() {
                                0
                            } else {
                                size.trunc(a) >> c
                            };
                            (r, flags::shr(a, c, *size))
                        }
                        ShiftOp::Sar => {
                            let sa = size.sext(a);
                            let r = size.trunc((sa >> c.min(size.bits() - 1)) as u32);
                            (r, flags::sar(a, c, *size))
                        }
                    };
                    self.write_rm(mem, dst, *size, r)?;
                    self.cpu.set_flags(f, STATUS);
                }
            }
            Inst::ImulRm { dst, src } => {
                let a = self.cpu.read(*dst, Size::D) as i32 as i64;
                let b = self.read_rm(mem, src, Size::D)? as i32 as i64;
                let p = a.wrapping_mul(b);
                self.cpu.write(*dst, Size::D, p as u32);
                self.cpu
                    .set_flags(flags::imul(p as u32, (p >> 32) as u32, Size::D), STATUS);
            }
            Inst::ImulRmImm { dst, src, imm } => {
                let a = self.read_rm(mem, src, Size::D)? as i32 as i64;
                let p = a.wrapping_mul(*imm as i64);
                self.cpu.write(*dst, Size::D, p as u32);
                self.cpu
                    .set_flags(flags::imul(p as u32, (p >> 32) as u32, Size::D), STATUS);
            }
            Inst::MulDiv { op, size, src } => {
                let s = self.read_rm(mem, src, *size)?;
                self.mul_div(*op, *size, s)?;
            }
            Inst::Cdq => {
                let v = if (self.cpu.gpr[0] as i32) < 0 {
                    u32::MAX
                } else {
                    0
                };
                self.cpu.write(EDX, Size::D, v);
            }
            Inst::Cwde => {
                let v = self.cpu.gpr[0] as u16 as i16 as i32;
                self.cpu.write(Gpr::new(0), Size::D, v as u32);
            }
            Inst::Jmp { target } => new_eip = *target,
            Inst::JmpInd { src } => new_eip = self.read_rm(mem, src, Size::D)?,
            Inst::Jcc { cond, target } => {
                if self.cpu.cond(*cond) {
                    new_eip = *target;
                    self.stats.cycles += self.timing.taken_branch_extra as u64;
                }
            }
            Inst::Call { target } => {
                self.push32(mem, next)?;
                new_eip = *target;
            }
            Inst::CallInd { src } => {
                let t = self.read_rm(mem, src, Size::D)?;
                self.push32(mem, next)?;
                new_eip = t;
            }
            Inst::Ret { pop } => {
                let t = self.pop32(mem)?;
                self.cpu.set_esp(self.cpu.esp().wrapping_add(*pop as u32));
                new_eip = t;
            }
            Inst::Setcc { cond, dst } => {
                let v = self.cpu.cond(*cond) as u32;
                self.write_rm(mem, dst, Size::B, v)?;
            }
            Inst::Cmovcc { cond, dst, src } => {
                // The source is read (and may fault) regardless of the
                // condition, as on hardware.
                let v = self.read_rm(mem, src, Size::D)?;
                if self.cpu.cond(*cond) {
                    self.cpu.write(*dst, Size::D, v);
                }
            }
            Inst::Nop => {}
            Inst::Hlt => event = Event::Halt,
            Inst::Ud2 => return Err(Fault::InvalidOpcode),
            Inst::Int { vector } => {
                event = Event::Syscall { vector: *vector };
            }
            Inst::Movs { size, rep } => {
                self.string_op(mem, *size, *rep, true)?;
            }
            Inst::Stos { size, rep } => {
                self.string_op(mem, *size, *rep, false)?;
            }
            Inst::Fld { src } => {
                let v = self.fp_read(mem, src)?;
                self.cpu.fpu.push(v).map_err(Fault::FpStack)?;
            }
            Inst::Fst { dst, pop } => {
                let v = self.cpu.fpu.st(0).map_err(Fault::FpStack)?;
                match dst {
                    FpOperand::M32(a) => {
                        let ea = self.ea(a);
                        self.store(mem, ea, Size::D, (v as f32).to_bits())?;
                    }
                    FpOperand::M64(a) => {
                        let ea = self.ea(a);
                        self.store64(mem, ea, v.to_bits())?;
                    }
                    FpOperand::St(i) => {
                        self.cpu.fpu.set_st(*i, v).map_err(Fault::FpStack)?;
                    }
                }
                if *pop {
                    self.cpu.fpu.pop().map_err(Fault::FpStack)?;
                }
            }
            Inst::Fild { src } => {
                let ea = self.ea(src);
                let v = self.load(mem, ea, Size::D)? as i32;
                self.cpu.fpu.push(v as f64).map_err(Fault::FpStack)?;
            }
            Inst::Fistp { dst } => {
                let v = self.cpu.fpu.st(0).map_err(Fault::FpStack)?;
                let ea = self.ea(dst);
                let i = if v.is_nan() || !(-2147483648.0..2147483648.0).contains(&v) {
                    i32::MIN // integer indefinite
                } else {
                    v as i32 // Rust casts truncate toward zero, like FISTP with RC=truncate
                };
                self.store(mem, ea, Size::D, i as u32)?;
                self.cpu.fpu.pop().map_err(Fault::FpStack)?;
            }
            Inst::Farith { op, form } => match form {
                FpArithForm::St0Mem(sz, a) => {
                    let src = self.fp_read(
                        mem,
                        &match sz {
                            Size2::S => FpOperand::M32(*a),
                            Size2::D => FpOperand::M64(*a),
                        },
                    )?;
                    let dst = self.cpu.fpu.st(0).map_err(Fault::FpStack)?;
                    self.cpu
                        .fpu
                        .set_st(0, op.apply(dst, src))
                        .map_err(Fault::FpStack)?;
                }
                FpArithForm::St0Sti(i) => {
                    let src = self.cpu.fpu.st(*i).map_err(Fault::FpStack)?;
                    let dst = self.cpu.fpu.st(0).map_err(Fault::FpStack)?;
                    self.cpu
                        .fpu
                        .set_st(0, op.apply(dst, src))
                        .map_err(Fault::FpStack)?;
                }
                FpArithForm::StiSt0 { i, pop } => {
                    let src = self.cpu.fpu.st(0).map_err(Fault::FpStack)?;
                    let dst = self.cpu.fpu.st(*i).map_err(Fault::FpStack)?;
                    self.cpu
                        .fpu
                        .set_st(*i, op.apply(dst, src))
                        .map_err(Fault::FpStack)?;
                    if *pop {
                        self.cpu.fpu.pop().map_err(Fault::FpStack)?;
                    }
                }
            },
            Inst::Fchs => {
                let v = self.cpu.fpu.st(0).map_err(Fault::FpStack)?;
                self.cpu.fpu.set_st(0, -v).map_err(Fault::FpStack)?;
            }
            Inst::Fabs => {
                let v = self.cpu.fpu.st(0).map_err(Fault::FpStack)?;
                self.cpu.fpu.set_st(0, v.abs()).map_err(Fault::FpStack)?;
            }
            Inst::Fsqrt => {
                let v = self.cpu.fpu.st(0).map_err(Fault::FpStack)?;
                self.cpu.fpu.set_st(0, v.sqrt()).map_err(Fault::FpStack)?;
            }
            Inst::Fxch { i } => {
                self.cpu.fpu.fxch(*i).map_err(Fault::FpStack)?;
            }
            Inst::Fld1 => self.cpu.fpu.push(1.0).map_err(Fault::FpStack)?,
            Inst::Fldz => self.cpu.fpu.push(0.0).map_err(Fault::FpStack)?,
            Inst::Fcomi { i, pop, .. } => {
                let a = self.cpu.fpu.st(0).map_err(Fault::FpStack)?;
                let b = self.cpu.fpu.st(*i).map_err(Fault::FpStack)?;
                self.cpu.set_flags(fp_compare_flags(a, b), flags::STATUS);
                if *pop {
                    self.cpu.fpu.pop().map_err(Fault::FpStack)?;
                }
            }
            Inst::Movd { mm, rm, to_mm } => {
                if *to_mm {
                    let v = self.read_rm(mem, rm, Size::D)?;
                    self.cpu.fpu.mmx_write(mm.num(), v as u64);
                } else {
                    let v = self.cpu.fpu.mmx_read(mm.num()) as u32;
                    self.cpu
                        .fpu
                        .mmx_write(mm.num(), self.cpu.fpu.mmx_read(mm.num()));
                    self.write_rm(mem, rm, Size::D, v)?;
                }
            }
            Inst::Movq { mm, src, to_mm } => {
                if *to_mm {
                    let v = match src {
                        MmM::Reg(m) => self.cpu.fpu.mmx_read(m.num()),
                        MmM::Mem(a) => {
                            let ea = self.ea(a);
                            self.load64(mem, ea)?
                        }
                    };
                    self.cpu.fpu.mmx_write(mm.num(), v);
                } else {
                    let v = self.cpu.fpu.mmx_read(mm.num());
                    match src {
                        MmM::Reg(m) => self.cpu.fpu.mmx_write(m.num(), v),
                        MmM::Mem(a) => {
                            let ea = self.ea(a);
                            self.store64(mem, ea, v)?;
                            // A store does not change MMX mode state
                            // beyond the read side; re-mark mode.
                            self.cpu.fpu.mmx_write(mm.num(), v);
                        }
                    }
                }
            }
            Inst::PAlu { op, dst, src } => {
                let a = self.cpu.fpu.mmx_read(dst.num());
                let b = match src {
                    MmM::Reg(m) => self.cpu.fpu.mmx_read(m.num()),
                    MmM::Mem(ad) => {
                        let ea = self.ea(ad);
                        self.load64(mem, ea)?
                    }
                };
                self.cpu.fpu.mmx_write(dst.num(), mmx_apply(*op, a, b));
            }
            Inst::Emms => self.cpu.fpu.emms(),
            Inst::Movss { xmm, rm, to_xmm } => {
                if *to_xmm {
                    match rm {
                        XmmM::Reg(x) => {
                            let v = self.cpu.xmm_lane(*x, 0);
                            self.cpu.set_xmm_lane(*xmm, 0, v);
                        }
                        XmmM::Mem(a) => {
                            let ea = self.ea(a);
                            let bits = self.load(mem, ea, Size::D)?;
                            // Load form zeroes the upper lanes.
                            self.cpu.xmm[xmm.num() as usize] = bits as u128;
                        }
                    }
                } else {
                    let v = self.cpu.xmm_lane(*xmm, 0);
                    match rm {
                        XmmM::Reg(x) => self.cpu.set_xmm_lane(*x, 0, v),
                        XmmM::Mem(a) => {
                            let ea = self.ea(a);
                            self.store(mem, ea, Size::D, v.to_bits())?;
                        }
                    }
                }
            }
            Inst::Movps {
                xmm, rm, to_xmm, ..
            } => {
                // MOVAPS alignment faults are modeled as a timing event
                // only; semantics are the unaligned ones.
                if *to_xmm {
                    let v = match rm {
                        XmmM::Reg(x) => self.cpu.xmm[x.num() as usize],
                        XmmM::Mem(a) => {
                            let ea = self.ea(a);
                            let lo = self.load64(mem, ea)? as u128;
                            let hi = self.load64(mem, ea.wrapping_add(8))? as u128;
                            lo | (hi << 64)
                        }
                    };
                    self.cpu.xmm[xmm.num() as usize] = v;
                } else {
                    let v = self.cpu.xmm[xmm.num() as usize];
                    match rm {
                        XmmM::Reg(x) => self.cpu.xmm[x.num() as usize] = v,
                        XmmM::Mem(a) => {
                            let ea = self.ea(a);
                            self.store64(mem, ea, v as u64)?;
                            self.store64(mem, ea.wrapping_add(8), (v >> 64) as u64)?;
                        }
                    }
                }
            }
            Inst::SseArith {
                op,
                scalar,
                dst,
                src,
            } => {
                let b = self.xmm_src(mem, src, *scalar)?;
                let lanes = if *scalar { 1 } else { 4 };
                for lane in 0..lanes {
                    let a = self.cpu.xmm_lane(*dst, lane);
                    let bv = f32::from_bits((b >> (lane * 32)) as u32);
                    self.cpu.set_xmm_lane(*dst, lane, op.apply(a, bv));
                }
            }
            Inst::Xorps { dst, src } => {
                let b = self.xmm_src(mem, src, false)?;
                self.cpu.xmm[dst.num() as usize] ^= b;
            }
            Inst::Sqrtss { dst, src } => {
                let b = self.xmm_src(mem, src, true)?;
                let v = f32::from_bits(b as u32).sqrt();
                self.cpu.set_xmm_lane(*dst, 0, v);
            }
            Inst::Cvtsi2ss { dst, src } => {
                let v = self.read_rm(mem, src, Size::D)? as i32;
                self.cpu.set_xmm_lane(*dst, 0, v as f32);
            }
            Inst::Cvttss2si { dst, src } => {
                let b = self.xmm_src(mem, src, true)?;
                let v = f32::from_bits(b as u32);
                let i = if v.is_nan() || !(-2147483648.0..2147483648.0).contains(&v) {
                    i32::MIN
                } else {
                    v as i32
                };
                self.cpu.write(*dst, Size::D, i as u32);
            }
            Inst::Ucomiss { a, b, .. } => {
                let x = self.cpu.xmm_lane(*a, 0) as f64;
                let yb = self.xmm_src(mem, b, true)?;
                let y = f32::from_bits(yb as u32) as f64;
                self.cpu.set_flags(fp_compare_flags(x, y), flags::STATUS);
            }
        }
        self.cpu.eip = new_eip;
        Ok(event)
    }

    fn xmm_src(&mut self, mem: &GuestMem, src: &XmmM, scalar: bool) -> Exec<u128> {
        match src {
            XmmM::Reg(x) => Ok(self.cpu.xmm[x.num() as usize]),
            XmmM::Mem(a) => {
                let ea = self.ea(a);
                if scalar {
                    Ok(self.load(mem, ea, Size::D)? as u128)
                } else {
                    let lo = self.load64(mem, ea)? as u128;
                    let hi = self.load64(mem, ea.wrapping_add(8))? as u128;
                    Ok(lo | (hi << 64))
                }
            }
        }
    }

    fn mul_div(&mut self, op: MulDivOp, size: Size, s: u32) -> Exec<()> {
        use flags::STATUS;
        match (op, size) {
            (MulDivOp::Mul, Size::D) => {
                let p = (self.cpu.gpr[0] as u64) * (s as u64);
                self.cpu.gpr[0] = p as u32;
                self.cpu.gpr[2] = (p >> 32) as u32;
                self.cpu
                    .set_flags(flags::mul(p as u32, (p >> 32) as u32, size), STATUS);
            }
            (MulDivOp::Imul, Size::D) => {
                let p = (self.cpu.gpr[0] as i32 as i64).wrapping_mul(s as i32 as i64);
                self.cpu.gpr[0] = p as u32;
                self.cpu.gpr[2] = (p >> 32) as u32;
                self.cpu
                    .set_flags(flags::imul(p as u32, (p >> 32) as u32, size), STATUS);
            }
            (MulDivOp::Div, Size::D) => {
                if s == 0 {
                    return Err(Fault::Divide);
                }
                let n = ((self.cpu.gpr[2] as u64) << 32) | self.cpu.gpr[0] as u64;
                let q = n / s as u64;
                if q > u32::MAX as u64 {
                    return Err(Fault::Divide);
                }
                self.cpu.gpr[0] = q as u32;
                self.cpu.gpr[2] = (n % s as u64) as u32;
            }
            (MulDivOp::Idiv, Size::D) => {
                if s == 0 {
                    return Err(Fault::Divide);
                }
                let n = (((self.cpu.gpr[2] as u64) << 32) | self.cpu.gpr[0] as u64) as i64;
                let d = s as i32 as i64;
                if n == i64::MIN && d == -1 {
                    return Err(Fault::Divide);
                }
                let q = n / d;
                if q > i32::MAX as i64 || q < i32::MIN as i64 {
                    return Err(Fault::Divide);
                }
                self.cpu.gpr[0] = q as u32;
                self.cpu.gpr[2] = (n % d) as u32;
            }
            (MulDivOp::Mul, sz) => {
                // Byte/word forms use AX / DX:AX.
                let a = self.cpu.read(Gpr::new(0), sz);
                let p = a as u64 * s as u64;
                match sz {
                    Size::B => self.cpu.write(Gpr::new(0), Size::W, p as u32),
                    _ => {
                        self.cpu.write(Gpr::new(0), Size::W, p as u32);
                        self.cpu.write(EDX, Size::W, (p >> 16) as u32);
                    }
                }
                self.cpu.set_flags(
                    flags::mul(p as u32 & sz.mask(), (p >> sz.bits()) as u32, sz),
                    STATUS,
                );
            }
            (MulDivOp::Imul, sz) => {
                let a = sz.sext(self.cpu.read(Gpr::new(0), sz)) as i64;
                let p = a.wrapping_mul(sz.sext(s) as i64);
                match sz {
                    Size::B => self.cpu.write(Gpr::new(0), Size::W, p as u32),
                    _ => {
                        self.cpu.write(Gpr::new(0), Size::W, p as u32);
                        self.cpu.write(EDX, Size::W, (p >> 16) as u32);
                    }
                }
                self.cpu.set_flags(
                    flags::imul(p as u32 & sz.mask(), (p >> sz.bits()) as u32, sz),
                    STATUS,
                );
            }
            (MulDivOp::Div, sz) => {
                if sz.trunc(s) == 0 {
                    return Err(Fault::Divide);
                }
                let n = match sz {
                    Size::B => self.cpu.read(Gpr::new(0), Size::W),
                    _ => (self.cpu.read(EDX, Size::W) << 16) | self.cpu.read(Gpr::new(0), Size::W),
                };
                let q = n / sz.trunc(s);
                if q > sz.mask() {
                    return Err(Fault::Divide);
                }
                let r = n % sz.trunc(s);
                match sz {
                    Size::B => self
                        .cpu
                        .write(Gpr::new(0), Size::W, (q & 0xFF) | ((r & 0xFF) << 8)),
                    _ => {
                        self.cpu.write(Gpr::new(0), Size::W, q);
                        self.cpu.write(EDX, Size::W, r);
                    }
                }
            }
            (MulDivOp::Idiv, sz) => {
                if sz.trunc(s) == 0 {
                    return Err(Fault::Divide);
                }
                let n = match sz {
                    Size::B => self.cpu.read(Gpr::new(0), Size::W) as u16 as i16 as i64,
                    _ => {
                        (((self.cpu.read(EDX, Size::W) << 16) | self.cpu.read(Gpr::new(0), Size::W))
                            as i32) as i64
                    }
                };
                let d = sz.sext(s) as i64;
                let q = n / d;
                let half = 1i64 << (sz.bits() - 1);
                if q >= half || q < -half {
                    return Err(Fault::Divide);
                }
                let r = n % d;
                match sz {
                    Size::B => self.cpu.write(
                        Gpr::new(0),
                        Size::W,
                        ((q as u32) & 0xFF) | (((r as u32) & 0xFF) << 8),
                    ),
                    _ => {
                        self.cpu.write(Gpr::new(0), Size::W, q as u32);
                        self.cpu.write(EDX, Size::W, r as u32);
                    }
                }
            }
        }
        Ok(())
    }

    fn string_op(&mut self, mem: &mut GuestMem, size: Size, rep: bool, movs: bool) -> Exec<()> {
        let step = if self.cpu.eflags & flags::DF != 0 {
            (size.bytes() as i32).wrapping_neg()
        } else {
            size.bytes() as i32
        };
        loop {
            if rep && self.cpu.gpr[ECX.num() as usize] == 0 {
                break;
            }
            let v = if movs {
                let esi = self.cpu.gpr[ESI.num() as usize];
                let v = self.load(mem, esi, size)?;
                self.cpu.gpr[ESI.num() as usize] = esi.wrapping_add(step as u32);
                v
            } else {
                self.cpu.read(Gpr::new(0), size)
            };
            let edi = self.cpu.gpr[EDI.num() as usize];
            match self.store(mem, edi, size, v) {
                Ok(()) => {}
                Err(e) => {
                    if movs {
                        // Back out the ESI bump so the element restarts.
                        let esi = self.cpu.gpr[ESI.num() as usize];
                        self.cpu.gpr[ESI.num() as usize] = esi.wrapping_sub(step as u32);
                    }
                    return Err(e);
                }
            }
            self.cpu.gpr[EDI.num() as usize] = edi.wrapping_add(step as u32);
            if !rep {
                break;
            }
            self.cpu.gpr[ECX.num() as usize] = self.cpu.gpr[ECX.num() as usize].wrapping_sub(1);
            self.stats.cycles += self.timing.string_element as u64;
        }
        Ok(())
    }

    /// Runs until a halt, syscall, trap, or `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Trap`].
    pub fn run(&mut self, mem: &mut GuestMem, max_steps: u64) -> Result<Event, Trap> {
        for _ in 0..max_steps {
            match self.step(mem)? {
                Event::Continue => {}
                other => return Ok(other),
            }
        }
        Ok(Event::Continue)
    }
}

/// Applies a two-operand ALU op, returning `(result, new_flag_bits)`.
pub fn alu_apply(op: AluOp, a: u32, b: u32, eflags: u32, size: Size) -> (u32, u32) {
    let carry = eflags & flags::CF != 0;
    match op {
        AluOp::Add => (size.trunc(a.wrapping_add(b)), flags::add(a, b, size)),
        AluOp::Adc => (
            size.trunc(a.wrapping_add(b).wrapping_add(carry as u32)),
            flags::adc(a, b, carry, size),
        ),
        AluOp::Sub | AluOp::Cmp => (size.trunc(a.wrapping_sub(b)), flags::sub(a, b, size)),
        AluOp::Sbb => (
            size.trunc(a.wrapping_sub(b).wrapping_sub(carry as u32)),
            flags::sbb(a, b, carry, size),
        ),
        AluOp::And => {
            let r = size.trunc(a & b);
            (r, flags::logic(r, size))
        }
        AluOp::Or => {
            let r = size.trunc(a | b);
            (r, flags::logic(r, size))
        }
        AluOp::Xor => {
            let r = size.trunc(a ^ b);
            (r, flags::logic(r, size))
        }
    }
}

/// EFLAGS bits produced by `FCOMI`/`UCOMISS`-style compares.
pub fn fp_compare_flags(a: f64, b: f64) -> u32 {
    if a.is_nan() || b.is_nan() {
        flags::ZF | flags::PF | flags::CF
    } else if a > b {
        0
    } else if a < b {
        flags::CF
    } else {
        flags::ZF
    }
}

/// Lane-wise MMX ALU evaluation on 64-bit packed values.
pub fn mmx_apply(op: MmxOp, a: u64, b: u64) -> u64 {
    fn lanewise(a: u64, b: u64, lane_bytes: u8, f: impl Fn(u32, u32) -> u32) -> u64 {
        let bits = lane_bytes as u32 * 8;
        let lanes = 64 / bits;
        let mask = if bits == 32 {
            u32::MAX as u64
        } else {
            (1u64 << bits) - 1
        };
        let mut out = 0u64;
        for i in 0..lanes {
            let sh = i * bits;
            let x = ((a >> sh) & mask) as u32;
            let y = ((b >> sh) & mask) as u32;
            out |= ((f(x, y) as u64) & mask) << sh;
        }
        out
    }
    match op {
        MmxOp::PAdd(w) => lanewise(a, b, w, |x, y| x.wrapping_add(y)),
        MmxOp::PSub(w) => lanewise(a, b, w, |x, y| x.wrapping_sub(y)),
        MmxOp::Pand => a & b,
        MmxOp::Por => a | b,
        MmxOp::Pxor => a ^ b,
        MmxOp::Pmullw => lanewise(a, b, 2, |x, y| {
            ((x as u16 as i16 as i32).wrapping_mul(y as u16 as i16 as i32)) as u32
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::mem::Prot;
    use crate::regs::*;

    fn setup(asm: &mut Asm) -> (Interp, GuestMem) {
        let code = asm.assemble();
        let mut mem = GuestMem::new();
        mem.map(0x40_0000, (code.len() as u64).max(1) + 0x1000, Prot::rwx());
        mem.write_forced(0x40_0000, &code);
        mem.map(0x7F_0000, 0x1_0000, Prot::rw()); // stack
        mem.map(0x10_0000, 0x1_0000, Prot::rw()); // data
        let mut i = Interp::new();
        i.cpu.eip = 0x40_0000;
        i.cpu.set_esp(0x7F_F000);
        (i, mem)
    }

    #[test]
    fn arithmetic_loop() {
        // sum 1..=10 into EAX
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EAX, 0);
        a.mov_ri(ECX, 10);
        let top = a.label();
        a.bind(top);
        a.alu_rr(AluOp::Add, EAX, ECX);
        a.dec(ECX);
        a.jcc(crate::flags::Cond::Ne, top);
        a.hlt();
        let (mut i, mut mem) = setup(&mut a);
        let ev = i.run(&mut mem, 1000).unwrap();
        assert_eq!(ev, Event::Halt);
        assert_eq!(i.cpu.gpr[0], 55);
    }

    #[test]
    fn push_pop_stack() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EAX, 0x1234);
        a.push_r(EAX);
        a.mov_ri(EAX, 0);
        a.pop_r(EBX);
        a.hlt();
        let (mut i, mut mem) = setup(&mut a);
        i.run(&mut mem, 100).unwrap();
        assert_eq!(i.cpu.gpr[EBX.num() as usize], 0x1234);
        assert_eq!(i.cpu.esp(), 0x7F_F000);
    }

    #[test]
    fn call_ret() {
        let mut a = Asm::new(0x40_0000);
        let f = a.label();
        a.mov_ri(EAX, 1);
        a.call(f);
        a.hlt();
        a.bind(f);
        a.alu_ri(AluOp::Add, EAX, 41);
        a.ret();
        let (mut i, mut mem) = setup(&mut a);
        i.run(&mut mem, 100).unwrap();
        assert_eq!(i.cpu.gpr[0], 42);
    }

    #[test]
    fn memory_ops_and_lea() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EBX, 0x10_0000);
        a.mov_ri(ECX, 4);
        a.mov_mi(Addr::base_index(EBX, ECX, 4, 0), 0xAABB);
        a.mov_load(EAX, Addr::base_disp(EBX, 16));
        a.lea(EDX, Addr::base_index(EBX, ECX, 2, 100));
        a.hlt();
        let (mut i, mut mem) = setup(&mut a);
        i.run(&mut mem, 100).unwrap();
        assert_eq!(i.cpu.gpr[0], 0xAABB);
        assert_eq!(i.cpu.gpr[2], 0x10_0000 + 8 + 100);
    }

    #[test]
    fn push_fault_preserves_esp() {
        // Paper Table 1: push with unmapped stack must not update ESP.
        let mut a = Asm::new(0x40_0000);
        a.push_r(EAX);
        let (mut i, mut mem) = setup(&mut a);
        i.cpu.set_esp(0x2000); // unmapped
        let t = i.run(&mut mem, 10).unwrap_err();
        assert!(matches!(t.fault, Fault::Mem(_)));
        assert_eq!(i.cpu.esp(), 0x2000, "ESP must be unchanged after fault");
        assert_eq!(t.eip, 0x40_0000);
        assert_eq!(i.cpu.eip, 0x40_0000, "EIP points at faulting instruction");
    }

    #[test]
    fn divide_faults() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EAX, 100);
        a.mov_ri(EDX, 0);
        a.mov_ri(ECX, 0);
        a.divide(MulDivOp::Div, ECX);
        let (mut i, mut mem) = setup(&mut a);
        let t = i.run(&mut mem, 10).unwrap_err();
        assert_eq!(t.fault, Fault::Divide);
        assert_eq!(i.cpu.gpr[0], 100, "EAX unchanged");
    }

    #[test]
    fn div_computes_quotient_remainder() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EAX, 100);
        a.mov_ri(EDX, 0);
        a.mov_ri(ECX, 7);
        a.divide(MulDivOp::Div, ECX);
        a.hlt();
        let (mut i, mut mem) = setup(&mut a);
        i.run(&mut mem, 10).unwrap();
        assert_eq!(i.cpu.gpr[0], 14);
        assert_eq!(i.cpu.gpr[2], 2);
    }

    #[test]
    fn idiv_signed() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EAX, -100i32 as u32 as i32);
        a.cdq();
        a.mov_ri(ECX, 7);
        a.divide(MulDivOp::Idiv, ECX);
        a.hlt();
        let (mut i, mut mem) = setup(&mut a);
        i.run(&mut mem, 10).unwrap();
        assert_eq!(i.cpu.gpr[0] as i32, -14);
        assert_eq!(i.cpu.gpr[2] as i32, -2);
    }

    #[test]
    fn fpu_stack_arithmetic() {
        // (1.5 + 2.5) * 2.0 = 8.0 via the stack.
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EBX, 0x10_0000);
        a.mov_mi(Addr::base(EBX), 1.5f32.to_bits() as i32);
        a.mov_mi(Addr::base_disp(EBX, 4), 2.5f32.to_bits() as i32);
        a.inst(Inst::Fld {
            src: FpOperand::M32(Addr::base(EBX)),
        });
        a.inst(Inst::Fld {
            src: FpOperand::M32(Addr::base_disp(EBX, 4)),
        });
        a.inst(Inst::Farith {
            op: FpArithOp::Add,
            form: FpArithForm::StiSt0 { i: 1, pop: true },
        });
        a.inst(Inst::Fld1);
        a.inst(Inst::Fld1);
        a.inst(Inst::Farith {
            op: FpArithOp::Add,
            form: FpArithForm::StiSt0 { i: 1, pop: true },
        });
        a.inst(Inst::Farith {
            op: FpArithOp::Mul,
            form: FpArithForm::StiSt0 { i: 1, pop: true },
        });
        a.inst(Inst::Fst {
            dst: FpOperand::M64(Addr::base_disp(EBX, 8)),
            pop: true,
        });
        a.hlt();
        let (mut i, mut mem) = setup(&mut a);
        i.run(&mut mem, 100).unwrap();
        let bits = mem.read(0x10_0008, 8).unwrap();
        assert_eq!(f64::from_bits(bits), 8.0);
        assert_eq!(i.cpu.fpu.depth(), 0);
    }

    #[test]
    fn fxch_and_compare() {
        let mut a = Asm::new(0x40_0000);
        a.inst(Inst::Fldz);
        a.inst(Inst::Fld1);
        a.inst(Inst::Fxch { i: 1 }); // st0=0, st1=1
        a.inst(Inst::Fcomi {
            i: 1,
            pop: false,
            unordered: false,
        }); // 0 < 1 -> CF
        a.hlt();
        let (mut i, mut mem) = setup(&mut a);
        i.run(&mut mem, 100).unwrap();
        assert_ne!(i.cpu.eflags & flags::CF, 0);
        assert_eq!(i.cpu.eflags & flags::ZF, 0);
    }

    #[test]
    fn mmx_roundtrip() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EAX, 0x0101_0101u32 as i32);
        a.inst(Inst::Movd {
            mm: Mm::new(0),
            rm: Rm::Reg(EAX),
            to_mm: true,
        });
        a.inst(Inst::PAlu {
            op: MmxOp::PAdd(1),
            dst: Mm::new(0),
            src: MmM::Reg(Mm::new(0)),
        });
        a.inst(Inst::Movd {
            mm: Mm::new(0),
            rm: Rm::Reg(EBX),
            to_mm: false,
        });
        a.inst(Inst::Emms);
        a.hlt();
        let (mut i, mut mem) = setup(&mut a);
        i.run(&mut mem, 100).unwrap();
        assert_eq!(i.cpu.gpr[EBX.num() as usize], 0x0202_0202);
    }

    #[test]
    fn sse_scalar_math() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EAX, 3);
        a.inst(Inst::Cvtsi2ss {
            dst: Xmm::new(0),
            src: Rm::Reg(EAX),
        });
        a.mov_ri(EAX, 4);
        a.inst(Inst::Cvtsi2ss {
            dst: Xmm::new(1),
            src: Rm::Reg(EAX),
        });
        a.inst(Inst::SseArith {
            op: SseOp::Mul,
            scalar: true,
            dst: Xmm::new(0),
            src: XmmM::Reg(Xmm::new(1)),
        });
        a.inst(Inst::Cvttss2si {
            dst: ECX,
            src: XmmM::Reg(Xmm::new(0)),
        });
        a.hlt();
        let (mut i, mut mem) = setup(&mut a);
        i.run(&mut mem, 100).unwrap();
        assert_eq!(i.cpu.gpr[ECX.num() as usize], 12);
    }

    #[test]
    fn rep_movs_copies() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(ESI, 0x10_0000);
        a.mov_ri(EDI, 0x10_0100);
        a.mov_ri(ECX, 8);
        a.inst(Inst::Movs {
            size: Size::D,
            rep: true,
        });
        a.hlt();
        let (mut i, mut mem) = setup(&mut a);
        for k in 0..8u32 {
            mem.write_u32(0x10_0000 + k as u64 * 4, k * 11).unwrap();
        }
        i.run(&mut mem, 100).unwrap();
        for k in 0..8u32 {
            assert_eq!(mem.read_u32(0x10_0100 + k as u64 * 4).unwrap(), k * 11);
        }
        assert_eq!(i.cpu.gpr[ECX.num() as usize], 0);
        assert_eq!(i.cpu.gpr[ESI.num() as usize], 0x10_0020);
    }

    #[test]
    fn misalignment_counted() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EBX, 0x10_0001);
        a.mov_load(EAX, Addr::base(EBX));
        a.hlt();
        let (mut i, mut mem) = setup(&mut a);
        i.run(&mut mem, 10).unwrap();
        assert_eq!(i.stats.misaligned, 1);
    }

    #[test]
    fn flags_subword() {
        // 8-bit add with carry-out.
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EAX, 0xFF);
        a.inst(Inst::Alu {
            op: AluOp::Add,
            size: Size::B,
            dst: Rm::Reg(EAX),
            src: RmI::Imm(1),
        });
        a.hlt();
        let (mut i, mut mem) = setup(&mut a);
        i.run(&mut mem, 10).unwrap();
        assert_eq!(i.cpu.gpr[0] & 0xFF, 0);
        assert_ne!(i.cpu.eflags & flags::CF, 0);
        assert_ne!(i.cpu.eflags & flags::ZF, 0);
    }

    #[test]
    fn setcc_cmov() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EAX, 5);
        a.alu_ri(AluOp::Cmp, EAX, 5);
        a.inst(Inst::Setcc {
            cond: flags::Cond::E,
            dst: Rm::Reg(EBX),
        });
        a.mov_ri(ECX, 9);
        a.inst(Inst::Cmovcc {
            cond: flags::Cond::E,
            dst: EDX,
            src: Rm::Reg(ECX),
        });
        a.hlt();
        let (mut i, mut mem) = setup(&mut a);
        i.cpu.gpr[EBX.num() as usize] = 0xFF00;
        i.run(&mut mem, 10).unwrap();
        assert_eq!(i.cpu.gpr[EBX.num() as usize], 0xFF01, "only BL written");
        assert_eq!(i.cpu.gpr[EDX.num() as usize], 9);
    }

    #[test]
    fn syscall_event() {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(EAX, 1);
        a.int(0x80);
        let (mut i, mut mem) = setup(&mut a);
        let ev = i.run(&mut mem, 10).unwrap();
        assert_eq!(ev, Event::Syscall { vector: 0x80 });
        // EIP already advanced past the INT.
        assert_eq!(i.cpu.eip, 0x40_0000 + 5 + 2);
    }

    #[test]
    fn ud2_traps() {
        let mut a = Asm::new(0x40_0000);
        a.inst(Inst::Ud2);
        let (mut i, mut mem) = setup(&mut a);
        let t = i.run(&mut mem, 10).unwrap_err();
        assert_eq!(t.fault, Fault::InvalidOpcode);
    }
}
