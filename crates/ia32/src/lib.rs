//! # IA-32 substrate
//!
//! The IA-32 side of the IA-32 Execution Layer reproduction: an
//! instruction model with real machine-code encodings, an assembler for
//! building guest binaries, a paged guest address space, a reference
//! interpreter that serves as the semantic oracle for the translator's
//! differential tests, and a simple cycle model standing in for the
//! paper's 1.6 GHz Xeon baseline (Figure 8).
//!
//! ## Example
//!
//! ```rust
//! use ia32::asm::{Asm, Image};
//! use ia32::inst::AluOp;
//! use ia32::interp::{Event, Interp};
//! use ia32::mem::GuestMem;
//! use ia32::regs::{EAX, ECX};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new(0x40_0000);
//! a.mov_ri(EAX, 0);
//! a.mov_ri(ECX, 100);
//! let top = a.label();
//! a.bind(top);
//! a.alu_rr(AluOp::Add, EAX, ECX);
//! a.dec(ECX);
//! a.jcc(ia32::flags::Cond::Ne, top);
//! a.hlt();
//!
//! let mut mem = GuestMem::new();
//! let cpu = Image::from_asm(&a).load(&mut mem);
//! let mut interp = Interp::new();
//! interp.cpu = cpu;
//! assert_eq!(interp.run(&mut mem, 10_000)?, Event::Halt);
//! assert_eq!(interp.cpu.gpr[0], 5050);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod cpu;
pub mod decode;
pub mod encode;
pub mod flags;
pub mod fpu;
pub mod inst;
pub mod interp;
pub mod mem;
pub mod regs;
pub mod timing;

pub use cpu::Cpu;
pub use flags::{Cond, Size};
pub use inst::Inst;
pub use interp::{Event, Fault, Interp, Trap};
pub use mem::{GuestMem, MemFault, Prot};
