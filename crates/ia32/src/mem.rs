//! The guest address space.
//!
//! A sparse, paged, 64-bit address space shared by the IA-32 application
//! (low 4 GiB) and, when running under the translator, the translator's
//! own data structures (counters, lookup tables) above 4 GiB — mirroring
//! how IA-32 EL lives in the same virtual address space as the translated
//! process.
//!
//! Pages carry protection bits; stores to pages marked
//! [`Prot::write_protect_code`] fault so the translator can detect
//! self-modifying code.

use std::collections::HashMap;

/// Page size (4 KiB, like both IA-32 and IPF base pages).
pub const PAGE_SIZE: u64 = 4096;

const PAGE_MASK: u64 = PAGE_SIZE - 1;

/// Page protection attributes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Prot {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable (fetchable by the interpreter / discoverable by the
    /// translator).
    pub exec: bool,
    /// Set by the translator on pages it has translated code from:
    /// stores fault with [`MemFaultKind::SmcWrite`] so translations can
    /// be invalidated.
    pub write_protect_code: bool,
}

impl Prot {
    /// Read/write data page.
    pub fn rw() -> Prot {
        Prot {
            read: true,
            write: true,
            exec: false,
            write_protect_code: false,
        }
    }

    /// Read/execute code page.
    pub fn rx() -> Prot {
        Prot {
            read: true,
            write: false,
            exec: true,
            write_protect_code: false,
        }
    }

    /// Read/write/execute page (IA-32 binaries frequently have writable
    /// code segments; this is what makes SMC possible).
    pub fn rwx() -> Prot {
        Prot {
            read: true,
            write: true,
            exec: true,
            write_protect_code: false,
        }
    }
}

/// Why a memory access faulted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemFaultKind {
    /// No page mapped at the address.
    Unmapped,
    /// Page mapped without read permission.
    NoRead,
    /// Page mapped without write permission.
    NoWrite,
    /// Fetch from a non-executable page.
    NoExec,
    /// Store hit a write-protected code page (self-modifying code).
    SmcWrite,
}

/// A faulting memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemFault {
    /// Faulting address.
    pub addr: u64,
    /// Fault cause.
    pub kind: MemFaultKind,
    /// True if the access was a write.
    pub write: bool,
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} fault on {} at {:#x}",
            self.kind,
            if self.write { "write" } else { "read" },
            self.addr
        )
    }
}

impl std::error::Error for MemFault {}

struct Page {
    data: Box<[u8; PAGE_SIZE as usize]>,
    prot: Prot,
}

/// The sparse guest address space.
pub struct GuestMem {
    pages: HashMap<u64, Page>,
}

impl Default for GuestMem {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for GuestMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GuestMem {{ {} pages mapped }}", self.pages.len())
    }
}

impl GuestMem {
    /// An empty address space.
    pub fn new() -> GuestMem {
        GuestMem {
            pages: HashMap::new(),
        }
    }

    /// Maps (or re-protects) the pages covering `[addr, addr+len)`.
    /// Newly mapped pages are zero-filled; existing pages keep their data
    /// but take the new protection.
    pub fn map(&mut self, addr: u64, len: u64, prot: Prot) {
        let first = addr & !PAGE_MASK;
        let last = addr.wrapping_add(len.max(1) - 1) & !PAGE_MASK;
        let mut p = first;
        loop {
            self.pages
                .entry(p)
                .and_modify(|pg| pg.prot = prot)
                .or_insert_with(|| Page {
                    data: Box::new([0; PAGE_SIZE as usize]),
                    prot,
                });
            if p == last {
                break;
            }
            p += PAGE_SIZE;
        }
    }

    /// Removes the pages covering `[addr, addr+len)`.
    pub fn unmap(&mut self, addr: u64, len: u64) {
        let first = addr & !PAGE_MASK;
        let last = addr.wrapping_add(len.max(1) - 1) & !PAGE_MASK;
        let mut p = first;
        loop {
            self.pages.remove(&p);
            if p == last {
                break;
            }
            p += PAGE_SIZE;
        }
    }

    /// Returns the protection of the page containing `addr`, if mapped.
    pub fn prot_of(&self, addr: u64) -> Option<Prot> {
        self.pages.get(&(addr & !PAGE_MASK)).map(|p| p.prot)
    }

    /// Marks the page containing `addr` as write-protected translated
    /// code (SMC detection) or clears the mark.
    pub fn set_code_protect(&mut self, addr: u64, on: bool) {
        if let Some(p) = self.pages.get_mut(&(addr & !PAGE_MASK)) {
            p.prot.write_protect_code = on;
        }
    }

    /// True if the page containing `addr` is mapped.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.pages.contains_key(&(addr & !PAGE_MASK))
    }

    fn page(&self, addr: u64, write: bool) -> Result<&Page, MemFault> {
        self.pages.get(&(addr & !PAGE_MASK)).ok_or(MemFault {
            addr,
            kind: MemFaultKind::Unmapped,
            write,
        })
    }

    /// Reads `N` bytes (`N` ≤ 8 in practice). Accesses may span pages.
    pub fn read(&self, addr: u64, len: u32) -> Result<u64, MemFault> {
        debug_assert!(len as usize <= 8);
        let mut v = 0u64;
        for i in 0..len as u64 {
            let a = addr.wrapping_add(i);
            let p = self.page(a, false)?;
            if !p.prot.read {
                return Err(MemFault {
                    addr: a,
                    kind: MemFaultKind::NoRead,
                    write: false,
                });
            }
            v |= (p.data[(a & PAGE_MASK) as usize] as u64) << (i * 8);
        }
        Ok(v)
    }

    /// Writes the low `len` bytes of `v` at `addr`.
    pub fn write(&mut self, addr: u64, len: u32, v: u64) -> Result<(), MemFault> {
        debug_assert!(len as usize <= 8);
        // Validate all pages before mutating (stores must be atomic with
        // respect to faults for precise-exception tests).
        for i in 0..len as u64 {
            let a = addr.wrapping_add(i);
            let p = self.page(a, true)?;
            if p.prot.write_protect_code {
                return Err(MemFault {
                    addr: a,
                    kind: MemFaultKind::SmcWrite,
                    write: true,
                });
            }
            if !p.prot.write {
                return Err(MemFault {
                    addr: a,
                    kind: MemFaultKind::NoWrite,
                    write: true,
                });
            }
        }
        for i in 0..len as u64 {
            let a = addr.wrapping_add(i);
            let page = self
                .pages
                .get_mut(&(a & !PAGE_MASK))
                .expect("validated above");
            page.data[(a & PAGE_MASK) as usize] = (v >> (i * 8)) as u8;
        }
        Ok(())
    }

    /// Writes bytes even to write-protected code pages (used by the
    /// loader and by the translator's own data structures).
    pub fn write_forced(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let a = addr.wrapping_add(i as u64);
            let page = self.pages.entry(a & !PAGE_MASK).or_insert_with(|| Page {
                data: Box::new([0; PAGE_SIZE as usize]),
                prot: Prot::rw(),
            });
            page.data[(a & PAGE_MASK) as usize] = b;
        }
    }

    /// Fetches up to `len` instruction bytes for decode; requires exec
    /// permission on the first byte's page.
    pub fn fetch(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemFault> {
        let p = self.page(addr, false)?;
        if !p.prot.exec {
            return Err(MemFault {
                addr,
                kind: MemFaultKind::NoExec,
                write: false,
            });
        }
        let mut out = Vec::with_capacity(len);
        for i in 0..len as u64 {
            let a = addr.wrapping_add(i);
            match self.page(a, false) {
                Ok(p) if p.prot.read => out.push(p.data[(a & PAGE_MASK) as usize]),
                _ => break, // shorter fetch near an unmapped boundary
            }
        }
        if out.is_empty() {
            return Err(MemFault {
                addr,
                kind: MemFaultKind::Unmapped,
                write: false,
            });
        }
        Ok(out)
    }

    /// Copies a byte range out (reads must all succeed).
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemFault> {
        let mut out = Vec::with_capacity(len);
        for i in 0..len as u64 {
            out.push(self.read(addr.wrapping_add(i), 1)? as u8);
        }
        Ok(out)
    }

    /// 32-bit read convenience.
    pub fn read_u32(&self, addr: u64) -> Result<u32, MemFault> {
        Ok(self.read(addr, 4)? as u32)
    }

    /// 32-bit write convenience.
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemFault> {
        self.write(addr, 4, v as u64)
    }

    /// Number of mapped pages (for diagnostics).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_read_write() {
        let mut m = GuestMem::new();
        m.map(0x1000, 0x2000, Prot::rw());
        m.write(0x1234, 4, 0xDEADBEEF).unwrap();
        assert_eq!(m.read(0x1234, 4).unwrap(), 0xDEADBEEF);
        assert_eq!(m.read(0x1236, 2).unwrap(), 0xDEAD);
    }

    #[test]
    fn unmapped_faults() {
        let m = GuestMem::new();
        let e = m.read(0x1000, 4).unwrap_err();
        assert_eq!(e.kind, MemFaultKind::Unmapped);
        assert!(!e.write);
    }

    #[test]
    fn cross_page_access() {
        let mut m = GuestMem::new();
        m.map(0x1000, 0x2000, Prot::rw());
        m.write(0x1FFE, 4, 0x11223344).unwrap();
        assert_eq!(m.read(0x1FFE, 4).unwrap(), 0x11223344);
        assert_eq!(m.read(0x2000, 2).unwrap(), 0x1122);
    }

    #[test]
    fn cross_page_fault_leaves_memory_unchanged() {
        let mut m = GuestMem::new();
        m.map(0x1000, 0x1000, Prot::rw()); // only one page
        let before = m.read(0x1FFC, 4).unwrap();
        let e = m.write(0x1FFE, 4, 0xAABBCCDD).unwrap_err();
        assert_eq!(e.kind, MemFaultKind::Unmapped);
        assert_eq!(e.addr, 0x2000);
        assert_eq!(m.read(0x1FFC, 4).unwrap(), before, "no partial write");
    }

    #[test]
    fn write_protect_code_faults() {
        let mut m = GuestMem::new();
        m.map(0x1000, 0x1000, Prot::rwx());
        m.set_code_protect(0x1000, true);
        let e = m.write(0x1100, 1, 0x90).unwrap_err();
        assert_eq!(e.kind, MemFaultKind::SmcWrite);
        // Forced write still works (loader path).
        m.write_forced(0x1100, &[0x90]);
        assert_eq!(m.read(0x1100, 1).unwrap(), 0x90);
        m.set_code_protect(0x1000, false);
        m.write(0x1100, 1, 0x91).unwrap();
    }

    #[test]
    fn fetch_requires_exec() {
        let mut m = GuestMem::new();
        m.map(0x1000, 0x1000, Prot::rw());
        let e = m.fetch(0x1000, 4).unwrap_err();
        assert_eq!(e.kind, MemFaultKind::NoExec);
        m.map(0x1000, 0x1000, Prot::rx());
        assert_eq!(m.fetch(0x1000, 4).unwrap().len(), 4);
    }

    #[test]
    fn high_addresses_work() {
        // Translator data lives above 4 GiB.
        let mut m = GuestMem::new();
        m.map(0x1_0000_0000, 0x1000, Prot::rw());
        m.write(0x1_0000_0008, 8, u64::MAX).unwrap();
        assert_eq!(m.read(0x1_0000_0008, 8).unwrap(), u64::MAX);
    }
}
