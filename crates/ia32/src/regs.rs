//! IA-32 register identifiers.
//!
//! The architectural general-purpose registers are identified by [`Gpr`]
//! (the 3-bit register number used in ModRM encodings). Operand size is
//! carried by the instruction, not the register id, mirroring how the
//! hardware encodes `EAX`/`AX`/`AL` with the same number.

use std::fmt;

/// A general-purpose register number (0-7).
///
/// The meaning depends on the operand size of the instruction using it:
/// for 32-bit operands 0 = `EAX`, for 16-bit 0 = `AX`, and for 8-bit
/// operands numbers 0-3 are the low bytes (`AL`..`BL`) while 4-7 are the
/// high bytes (`AH`..`BH`) of registers 0-3.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Gpr(u8);

/// `EAX` — accumulator.
pub const EAX: Gpr = Gpr(0);
/// `ECX` — counter.
pub const ECX: Gpr = Gpr(1);
/// `EDX` — data.
pub const EDX: Gpr = Gpr(2);
/// `EBX` — base.
pub const EBX: Gpr = Gpr(3);
/// `ESP` — stack pointer.
pub const ESP: Gpr = Gpr(4);
/// `EBP` — frame pointer.
pub const EBP: Gpr = Gpr(5);
/// `ESI` — source index.
pub const ESI: Gpr = Gpr(6);
/// `EDI` — destination index.
pub const EDI: Gpr = Gpr(7);

impl Gpr {
    /// Creates a register from its ModRM register number.
    ///
    /// # Panics
    ///
    /// Panics if `n > 7`.
    pub fn new(n: u8) -> Gpr {
        assert!(n < 8, "GPR number out of range: {n}");
        Gpr(n)
    }

    /// The 3-bit register number used in instruction encodings.
    pub fn num(self) -> u8 {
        self.0
    }

    /// All eight registers in encoding order.
    pub fn all() -> [Gpr; 8] {
        [EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI]
    }

    /// The 32-bit register name.
    pub fn name32(self) -> &'static str {
        ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"][self.0 as usize]
    }

    /// The 16-bit register name.
    pub fn name16(self) -> &'static str {
        ["ax", "cx", "dx", "bx", "sp", "bp", "si", "di"][self.0 as usize]
    }

    /// The 8-bit register name (numbers 4-7 are the high-byte registers).
    pub fn name8(self) -> &'static str {
        ["al", "cl", "dl", "bl", "ah", "ch", "dh", "bh"][self.0 as usize]
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name32())
    }
}

/// An MMX register `MM0`-`MM7`.
///
/// Architecturally aliased to the significands of the x87 physical
/// registers (see [`crate::fpu`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Mm(u8);

impl Mm {
    /// Creates an MMX register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n > 7`.
    pub fn new(n: u8) -> Mm {
        assert!(n < 8, "MMX register number out of range: {n}");
        Mm(n)
    }

    /// The register number.
    pub fn num(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Mm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mm{}", self.0)
    }
}

/// An SSE register `XMM0`-`XMM7`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Xmm(u8);

impl Xmm {
    /// Creates an XMM register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n > 7`.
    pub fn new(n: u8) -> Xmm {
        assert!(n < 8, "XMM register number out of range: {n}");
        Xmm(n)
    }

    /// The register number.
    pub fn num(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Xmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xmm{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_roundtrip() {
        for n in 0..8 {
            assert_eq!(Gpr::new(n).num(), n);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gpr_out_of_range() {
        Gpr::new(8);
    }

    #[test]
    fn names() {
        assert_eq!(EAX.name32(), "eax");
        assert_eq!(EAX.name16(), "ax");
        assert_eq!(EAX.name8(), "al");
        assert_eq!(ESP.name8(), "ah"); // number 4 as an 8-bit operand is AH
        assert_eq!(EDI.to_string(), "edi");
    }

    #[test]
    fn all_in_encoding_order() {
        for (i, r) in Gpr::all().iter().enumerate() {
            assert_eq!(r.num() as usize, i);
        }
    }
}
