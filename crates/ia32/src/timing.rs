//! IA-32 cycle model — the "Xeon" baseline of the paper's Figure 8.
//!
//! A deliberately simple superscalar cost model: most instructions retire
//! in a fraction of a cycle (modeled as fixed-point "milli-cycles"
//! internally would be overkill; we use per-instruction integer costs
//! chosen so typical integer code averages ~1 instruction/cycle), divides
//! and FP are slower, and — the property Figure 8 and the misalignment
//! experiment hinge on — misaligned accesses cost only a few cycles,
//! unlike the multi-thousand-cycle OS-assisted penalty on Itanium.

use crate::inst::{Inst, MulDivOp};

/// Cost parameters for the IA-32 machine model.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Timing {
    /// Clock frequency in MHz (Figure 8 uses a 1.6 GHz Xeon).
    pub clock_mhz: u32,
    /// Extra cycles for a misaligned data access (low on IA-32).
    pub misalign_penalty: u32,
    /// Extra cycles when a conditional branch is taken.
    pub taken_branch_extra: u32,
    /// Cycles per `REP` string element beyond the first.
    pub string_element: u32,
    /// Base cost of a simple ALU/move instruction.
    pub simple: u32,
    /// Cost of a load or store.
    pub mem: u32,
    /// Cost of a multiply.
    pub mul: u32,
    /// Cost of a divide.
    pub div: u32,
    /// Cost of an x87/SSE arithmetic operation.
    pub fp: u32,
    /// Cost of FSQRT / divide-class FP.
    pub fp_slow: u32,
}

impl Default for Timing {
    /// Xeon-like defaults (1.6 GHz).
    fn default() -> Timing {
        Timing {
            clock_mhz: 1600,
            misalign_penalty: 3,
            taken_branch_extra: 1,
            string_element: 1,
            simple: 1,
            mem: 1,
            mul: 4,
            div: 24,
            fp: 4,
            fp_slow: 30,
        }
    }
}

impl Timing {
    /// Base cost of an instruction (memory/misalign/branch extras are
    /// charged separately by the interpreter).
    pub fn cost(&self, inst: &Inst) -> u32 {
        let mem_extra = if inst.mem_operands().is_some() {
            self.mem - 1
        } else {
            0
        };
        let base = match inst {
            Inst::MulDiv {
                op: MulDivOp::Div | MulDivOp::Idiv,
                ..
            } => self.div,
            Inst::MulDiv { .. } | Inst::ImulRm { .. } | Inst::ImulRmImm { .. } => self.mul,
            Inst::Fsqrt => self.fp_slow,
            Inst::Farith { op, .. } => match op {
                crate::inst::FpArithOp::Div | crate::inst::FpArithOp::DivR => self.fp_slow,
                _ => self.fp,
            },
            Inst::Fld { .. }
            | Inst::Fst { .. }
            | Inst::Fild { .. }
            | Inst::Fistp { .. }
            | Inst::Fchs
            | Inst::Fabs
            | Inst::Fxch { .. }
            | Inst::Fld1
            | Inst::Fldz
            | Inst::Fcomi { .. } => self.fp / 2,
            Inst::SseArith { op, .. } => match op {
                crate::inst::SseOp::Div => self.fp_slow,
                _ => self.fp,
            },
            Inst::Sqrtss { .. } => self.fp_slow,
            Inst::Movss { .. }
            | Inst::Movps { .. }
            | Inst::Xorps { .. }
            | Inst::Cvtsi2ss { .. }
            | Inst::Cvttss2si { .. }
            | Inst::Ucomiss { .. } => self.fp / 2,
            Inst::PAlu { .. } | Inst::Movd { .. } | Inst::Movq { .. } | Inst::Emms => {
                self.simple + 1
            }
            _ => self.simple,
        };
        base + mem_extra
    }

    /// Converts a cycle count into seconds at this model's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz as f64 * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::Size;
    use crate::inst::{AluOp, Rm, RmI};
    use crate::regs::EAX;

    #[test]
    fn divide_costs_more_than_add() {
        let t = Timing::default();
        let add = Inst::Alu {
            op: AluOp::Add,
            size: Size::D,
            dst: Rm::Reg(EAX),
            src: RmI::Imm(1),
        };
        let div = Inst::MulDiv {
            op: MulDivOp::Div,
            size: Size::D,
            src: Rm::Reg(EAX),
        };
        assert!(t.cost(&div) > 10 * t.cost(&add));
    }

    #[test]
    fn misalign_penalty_is_small() {
        // The defining asymmetry vs Itanium: single-digit cycles.
        assert!(Timing::default().misalign_penalty < 10);
    }

    #[test]
    fn seconds_conversion() {
        let t = Timing::default();
        let s = t.cycles_to_seconds(1_600_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
