//! The IPF bundler/assembler.
//!
//! Turns a linear instruction stream (with stop requests and labels)
//! into template-conformant bundles, patching label targets to absolute
//! bundle addresses. Used by both the translator's cold/hot backends and
//! the workloads' native-code generator.

use crate::bundle::{Bundle, SlotKind, Template};
use crate::inst::{Inst, Op, Target, Unit};
use crate::regs::P0;
use std::collections::HashMap;

/// A label naming a (future) bundle address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(pub u32);

#[derive(Clone, Debug)]
enum Item {
    Inst { inst: Inst, stop_after: bool },
    Bind(Label),
}

/// Where each pushed instruction landed after bundling: indexed by push
/// order, `(bundle_index, slot)`.
pub type Placements = Vec<(usize, u8)>;

/// Builds bundles from a stream of instructions, stops, and labels.
///
/// Branch targets are always bundle-aligned (as on hardware): binding a
/// label closes the current bundle.
#[derive(Debug, Default)]
pub struct CodeBuilder {
    items: Vec<Item>,
    next_label: u32,
}

impl CodeBuilder {
    /// An empty builder.
    pub fn new() -> CodeBuilder {
        CodeBuilder::default()
    }

    /// Allocates a fresh label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` here (forces a new bundle).
    pub fn bind(&mut self, label: Label) {
        self.items.push(Item::Bind(label));
    }

    /// Appends an unpredicated instruction.
    pub fn push(&mut self, op: Op) {
        self.items.push(Item::Inst {
            inst: Inst::new(op),
            stop_after: false,
        });
    }

    /// Appends a predicated instruction.
    pub fn push_pred(&mut self, qp: crate::regs::Pr, op: Op) {
        self.items.push(Item::Inst {
            inst: Inst::pred(qp, op),
            stop_after: false,
        });
    }

    /// Appends a full instruction.
    pub fn push_inst(&mut self, inst: Inst) {
        self.items.push(Item::Inst {
            inst,
            stop_after: false,
        });
    }

    /// Requests a stop bit (`;;`) after the most recent instruction.
    pub fn stop(&mut self) {
        if let Some(Item::Inst { stop_after, .. }) = self.items.last_mut() {
            *stop_after = true;
        }
    }

    /// Number of instructions queued (excluding label binds).
    pub fn len(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, Item::Inst { .. }))
            .count()
    }

    /// True if no instructions are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Assembles into bundles based at `base`, resolving labels.
    ///
    /// Returns the bundles and the resolved address of every label.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never bound.
    pub fn assemble(&self, base: u64) -> (Vec<Bundle>, HashMap<Label, u64>) {
        let (b, l, _) = self.assemble_with_placements(base);
        (b, l)
    }

    /// Like [`CodeBuilder::assemble`], additionally returning where each
    /// pushed instruction landed (`(bundle_index, slot)`, in push
    /// order) — the translator's recovery maps need this.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never bound.
    pub fn assemble_with_placements(
        &self,
        base: u64,
    ) -> (Vec<Bundle>, HashMap<Label, u64>, Placements) {
        let mut bundles: Vec<Bundle> = Vec::new();
        let mut packer = Packer::new();
        let mut label_bundle: HashMap<Label, usize> = HashMap::new();
        let mut pending_binds: Vec<Label> = Vec::new();
        let mut seq = 0usize;

        for item in &self.items {
            match item {
                Item::Bind(l) => {
                    packer.flush(&mut bundles);
                    pending_binds.push(*l);
                }
                Item::Inst { inst, stop_after } => {
                    if !pending_binds.is_empty() {
                        let idx = bundles.len() + usize::from(packer.has_partial());
                        // Binding lands on the *next* bundle started.
                        debug_assert!(!packer.has_partial());
                        for l in pending_binds.drain(..) {
                            label_bundle.insert(l, idx);
                        }
                    }
                    packer.add_tracked(*inst, *stop_after, seq, &mut bundles);
                    seq += 1;
                }
            }
        }
        packer.flush(&mut bundles);
        // Trailing binds point one past the end.
        for l in pending_binds.drain(..) {
            label_bundle.insert(l, bundles.len());
        }

        let addr_of = |idx: usize| base + idx as u64 * Bundle::SIZE;
        let labels: HashMap<Label, u64> = label_bundle
            .iter()
            .map(|(l, i)| (*l, addr_of(*i)))
            .collect();

        // Patch label targets.
        for b in &mut bundles {
            for s in &mut b.slots {
                if let Some(Target::Label(l)) = s.op.target() {
                    let addr = *labels
                        .get(&Label(l))
                        .unwrap_or_else(|| panic!("unbound label L{l}"));
                    s.op.set_target(Target::Abs(addr));
                }
            }
        }
        let mut placements: Placements = vec![(usize::MAX, 0); seq];
        for p in packer.placements.drain(..) {
            placements[p.0] = (p.1, p.2);
        }
        (bundles, labels, placements)
    }
}

/// Greedy template packer.
struct Packer {
    /// Candidate templates still consistent with the placed slots.
    candidates: Vec<Template>,
    placed: Vec<(Inst, bool, Option<usize>)>,
    /// Final placements: (seq, bundle_index, slot).
    placements: Vec<(usize, usize, u8)>,
    cur_seq: Option<usize>,
}

impl Packer {
    fn new() -> Packer {
        Packer {
            candidates: Vec::new(),
            placed: Vec::new(),
            placements: Vec::new(),
            cur_seq: None,
        }
    }

    fn add_tracked(&mut self, inst: Inst, stop_after: bool, seq: usize, out: &mut Vec<Bundle>) {
        self.cur_seq = Some(seq);
        self.add(inst, stop_after, out);
        self.cur_seq = None;
    }

    fn has_partial(&self) -> bool {
        !self.placed.is_empty()
    }

    fn add(&mut self, inst: Inst, stop_after: bool, out: &mut Vec<Bundle>) {
        let unit = inst.op.unit();
        if unit == Unit::L {
            // movl consumes slots 1+2 of MLX; it needs a fresh or
            // M-compatible slot-0 bundle.
            if self.placed.len() > 1 || (self.placed.len() == 1 && !self.fits_mlx_slot0()) {
                self.flush(out);
            }
            if self.placed.is_empty() {
                self.placed
                    .push((Inst::new(Op::Nop { unit: Unit::M }), false, None));
            }
            self.candidates = vec![Template::Mlx];
            self.placed.push((inst, false, self.cur_seq));
            // X placeholder slot carries the stop if requested.
            self.placed
                .push((Inst::new(Op::Nop { unit: Unit::I }), stop_after, None));
            self.flush(out);
            return;
        }

        let idx = self.placed.len();
        if idx == 0 {
            self.candidates = Template::all()
                .iter()
                .copied()
                .filter(|t| *t != Template::Mlx && t.slots()[0].accepts(unit))
                .collect();
            if self.candidates.is_empty() {
                // e.g. an I- or F-type op cannot start slot 0 of any
                // template: prepend an M nop and keep the templates that
                // can still take this op in slot 1.
                self.candidates = Template::all()
                    .iter()
                    .copied()
                    .filter(|t| *t != Template::Mlx && t.slots()[1].accepts(unit))
                    .collect();
                assert!(
                    !self.candidates.is_empty(),
                    "no template accepts unit {unit:?} in slot 1"
                );
                self.placed
                    .push((Inst::new(Op::Nop { unit: Unit::M }), false, None));
                self.placed.push((inst, stop_after, self.cur_seq));
                return;
            }
            self.placed.push((inst, stop_after, self.cur_seq));
            return;
        }

        let surviving: Vec<Template> = self
            .candidates
            .iter()
            .copied()
            .filter(|t| t.slots()[idx].accepts(unit))
            .collect();
        if surviving.is_empty() {
            self.flush(out);
            return self.add(inst, stop_after, out);
        }
        self.candidates = surviving;
        self.placed.push((inst, stop_after, self.cur_seq));
        if self.placed.len() == 3 {
            self.flush(out);
        }
    }

    fn fits_mlx_slot0(&self) -> bool {
        self.placed
            .first()
            .map(|(i, _, _)| SlotKind::M.accepts(i.op.unit()))
            .unwrap_or(true)
    }

    fn flush(&mut self, out: &mut Vec<Bundle>) {
        if self.placed.is_empty() {
            return;
        }
        let template = self.candidates.first().copied().unwrap_or(Template::Mii);
        let pattern = template.slots();
        let mut slots = [
            Inst::new(Op::Nop { unit: Unit::M }),
            Inst::new(Op::Nop { unit: Unit::I }),
            Inst::new(Op::Nop { unit: Unit::I }),
        ];
        let mut stops = [false; 3];
        let bundle_idx = out.len();
        for (i, (inst, stop, seq)) in self.placed.drain(..).enumerate() {
            slots[i] = inst;
            stops[i] = stop;
            if let Some(s) = seq {
                self.placements.push((s, bundle_idx, i as u8));
            }
        }
        // Fill remaining slots with unit-appropriate nops.
        for i in 0..3 {
            if matches!(slots[i].op, Op::Nop { .. }) {
                let unit = match pattern[i] {
                    SlotKind::M => Unit::M,
                    SlotKind::I | SlotKind::L | SlotKind::X => Unit::I,
                    SlotKind::F => Unit::F,
                    SlotKind::B => Unit::B,
                };
                slots[i] = Inst {
                    qp: P0,
                    op: Op::Nop { unit },
                };
            }
        }
        out.push(Bundle {
            template,
            slots,
            stops,
        });
        self.candidates.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::CmpRel;
    use crate::regs::*;

    #[test]
    fn packs_alu_run_into_bundles() {
        let mut cb = CodeBuilder::new();
        for i in 0..6u16 {
            cb.push(Op::AddImm {
                d: Gr(32 + i),
                imm: i as i64,
                a: R0,
            });
        }
        let (bundles, _) = cb.assemble(0x1000);
        assert_eq!(bundles.len(), 2, "six A-type ops fit two bundles");
    }

    #[test]
    fn branch_goes_to_b_slot() {
        let mut cb = CodeBuilder::new();
        let l = cb.label();
        cb.bind(l);
        cb.push(Op::AddImm {
            d: Gr(32),
            imm: 1,
            a: Gr(32),
        });
        cb.push(Op::Br {
            target: Target::Label(l.0),
        });
        let (bundles, labels) = cb.assemble(0x1000);
        assert_eq!(labels[&l], 0x1000);
        let last = bundles.last().unwrap();
        // Branch occupies a B slot and targets the first bundle.
        let br = last
            .slots
            .iter()
            .find(|s| s.op.is_branch())
            .expect("branch placed");
        assert_eq!(br.op.target(), Some(Target::Abs(0x1000)));
    }

    #[test]
    fn label_binding_is_bundle_aligned() {
        let mut cb = CodeBuilder::new();
        cb.push(Op::AddImm {
            d: Gr(32),
            imm: 0,
            a: R0,
        });
        let l = cb.label();
        cb.bind(l); // closes the partial bundle
        cb.push(Op::AddImm {
            d: Gr(33),
            imm: 0,
            a: R0,
        });
        let (bundles, labels) = cb.assemble(0);
        assert_eq!(bundles.len(), 2);
        assert_eq!(labels[&l], 16);
    }

    #[test]
    fn movl_uses_mlx() {
        let mut cb = CodeBuilder::new();
        cb.push(Op::Movl {
            d: Gr(40),
            imm: 0xDEAD_BEEF_0000_1111,
        });
        let (bundles, _) = cb.assemble(0);
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].template, Template::Mlx);
        assert!(matches!(bundles[0].slots[1].op, Op::Movl { .. }));
    }

    #[test]
    fn stop_bits_recorded() {
        let mut cb = CodeBuilder::new();
        cb.push(Op::AddImm {
            d: Gr(32),
            imm: 1,
            a: R0,
        });
        cb.stop();
        cb.push(Op::AddImm {
            d: Gr(33),
            imm: 2,
            a: Gr(32),
        });
        let (bundles, _) = cb.assemble(0);
        assert!(bundles[0].stops[0]);
    }

    #[test]
    fn fp_and_cmp_pack() {
        let mut cb = CodeBuilder::new();
        cb.push(Op::Cmp {
            rel: CmpRel::Eq,
            pt: Pr(1),
            pf: Pr(2),
            a: Gr(32),
            b: Gr(33),
        });
        cb.push(Op::Fma {
            d: Fr(32),
            a: Fr(8),
            b: Fr(9),
            c: F0,
        });
        cb.push(Op::Ld {
            sz: 8,
            d: Gr(34),
            addr: Gr(35),
            spec: false,
        });
        let (bundles, _) = cb.assemble(0);
        // All three must be placed (template shuffling may take 1-2
        // bundles); count non-nop slots.
        let placed: usize = bundles
            .iter()
            .flat_map(|b| b.slots.iter())
            .filter(|s| !matches!(s.op, Op::Nop { .. }))
            .count();
        assert_eq!(placed, 3);
    }
}
