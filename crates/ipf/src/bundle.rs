//! Instruction bundles and dispersal templates.
//!
//! Itanium packs three 41-bit instruction slots plus a 5-bit template
//! into each 128-bit bundle; the template fixes the unit type of each
//! slot and the positions of architectural *stop bits* (instruction-group
//! boundaries). We model the ten template shapes the translator uses.
//!
//! Idealization (documented): real templates each encode a fixed stop
//! position; we carry stop bits per-slot, which slightly enlarges the
//! template space but changes neither dispersal shape nor timing.

use crate::inst::{Inst, Op, Unit};
use crate::regs::P0;
use std::fmt;

/// Slot kinds a template can demand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotKind {
    /// Memory slot.
    M,
    /// Integer slot.
    I,
    /// FP slot.
    F,
    /// Branch slot.
    B,
    /// Long-immediate slot (first half of `movl`).
    L,
    /// Extended-immediate slot (second half of `movl`).
    X,
}

impl SlotKind {
    /// True if an instruction of unit class `u` may occupy this slot.
    pub fn accepts(self, u: Unit) -> bool {
        match (self, u) {
            (SlotKind::M, Unit::M)
            | (SlotKind::I, Unit::I)
            | (SlotKind::F, Unit::F)
            | (SlotKind::B, Unit::B)
            | (SlotKind::L, Unit::L) => true,
            // A-type may disperse to M or I.
            (SlotKind::M | SlotKind::I, Unit::A) => true,
            _ => false,
        }
    }
}

/// The bundle templates (by slot-kind pattern).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Template {
    Mii,
    Mlx,
    Mmi,
    Mfi,
    Mmf,
    Mib,
    Mbb,
    Bbb,
    Mmb,
    Mfb,
}

impl Template {
    /// All templates in bundler preference order (integer-heavy first).
    pub fn all() -> &'static [Template] {
        &[
            Template::Mii,
            Template::Mmi,
            Template::Mfi,
            Template::Mib,
            Template::Mmf,
            Template::Mmb,
            Template::Mfb,
            Template::Mbb,
            Template::Bbb,
            Template::Mlx,
        ]
    }

    /// The slot pattern.
    pub fn slots(self) -> [SlotKind; 3] {
        use SlotKind::*;
        match self {
            Template::Mii => [M, I, I],
            Template::Mlx => [M, L, X],
            Template::Mmi => [M, M, I],
            Template::Mfi => [M, F, I],
            Template::Mmf => [M, M, F],
            Template::Mib => [M, I, B],
            Template::Mbb => [M, B, B],
            Template::Bbb => [B, B, B],
            Template::Mmb => [M, M, B],
            Template::Mfb => [M, F, B],
        }
    }
}

/// A 3-slot bundle.
#[derive(Clone, PartialEq, Debug)]
pub struct Bundle {
    /// The template (fixes slot unit kinds).
    pub template: Template,
    /// The three instruction slots. The `X` slot of an `MLX` bundle
    /// holds a `Nop` placeholder (its bits belong to the `movl`).
    pub slots: [Inst; 3],
    /// Stop bit after each slot (instruction-group boundary).
    pub stops: [bool; 3],
}

impl Bundle {
    /// Bytes per bundle (architectural).
    pub const SIZE: u64 = 16;

    /// A bundle of three no-ops.
    pub fn nops() -> Bundle {
        Bundle {
            template: Template::Mii,
            slots: [
                Inst {
                    qp: P0,
                    op: Op::Nop { unit: Unit::M },
                },
                Inst {
                    qp: P0,
                    op: Op::Nop { unit: Unit::I },
                },
                Inst {
                    qp: P0,
                    op: Op::Nop { unit: Unit::I },
                },
            ],
            stops: [false, false, false],
        }
    }
}

impl fmt::Display for Bundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{ .{:?}", self.template)?;
        for (i, s) in self.slots.iter().enumerate() {
            write!(f, " {}{}", s, if self.stops[i] { " ;;" } else { "" })?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_acceptance() {
        assert!(SlotKind::M.accepts(Unit::A));
        assert!(SlotKind::I.accepts(Unit::A));
        assert!(!SlotKind::F.accepts(Unit::A));
        assert!(SlotKind::B.accepts(Unit::B));
        assert!(!SlotKind::M.accepts(Unit::B));
        assert!(SlotKind::L.accepts(Unit::L));
    }

    #[test]
    fn template_patterns() {
        assert_eq!(
            Template::Mib.slots(),
            [SlotKind::M, SlotKind::I, SlotKind::B]
        );
        assert_eq!(Template::all().len(), 10);
    }

    #[test]
    fn nop_bundle_displays() {
        let b = Bundle::nops();
        assert!(b.to_string().contains("Mii"));
    }
}
