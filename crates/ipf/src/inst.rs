//! The Itanium instruction subset.
//!
//! [`Op`] doubles as the translator's intermediate language: register
//! fields are [`u16`]-backed so the hot optimizer can use virtual
//! registers (≥ [`crate::regs::VIRT_BASE`]) before allocation. The
//! def/use walker ([`Op::visit_regs`]) drives the dependency graph,
//! renaming, and bundling.

use crate::regs::{Br, Fr, Gr, Pr};
use std::fmt;

/// Integer comparison relations for `cmp`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpRel {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned less-or-equal.
    Leu,
    /// Unsigned greater-than.
    Gtu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl CmpRel {
    /// Evaluates the relation.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            CmpRel::Eq => a == b,
            CmpRel::Ne => a != b,
            CmpRel::Lt => (a as i64) < (b as i64),
            CmpRel::Le => (a as i64) <= (b as i64),
            CmpRel::Gt => (a as i64) > (b as i64),
            CmpRel::Ge => (a as i64) >= (b as i64),
            CmpRel::Ltu => a < b,
            CmpRel::Leu => a <= b,
            CmpRel::Gtu => a > b,
            CmpRel::Geu => a >= b,
        }
    }

    /// Mnemonic suffix.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpRel::Eq => "eq",
            CmpRel::Ne => "ne",
            CmpRel::Lt => "lt",
            CmpRel::Le => "le",
            CmpRel::Gt => "gt",
            CmpRel::Ge => "ge",
            CmpRel::Ltu => "ltu",
            CmpRel::Leu => "leu",
            CmpRel::Gtu => "gtu",
            CmpRel::Geu => "geu",
        }
    }
}

/// FP comparison relations for `fcmp`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FcmpRel {
    /// Equal (ordered).
    Eq,
    /// Less-than (ordered).
    Lt,
    /// Less-or-equal (ordered).
    Le,
    /// Unordered (either operand NaN).
    Unord,
}

impl FcmpRel {
    /// Evaluates the relation on doubles.
    pub fn eval(self, a: f64, b: f64) -> bool {
        match self {
            FcmpRel::Eq => a == b,
            FcmpRel::Lt => a < b,
            FcmpRel::Le => a <= b,
            FcmpRel::Unord => a.is_nan() || b.is_nan(),
        }
    }
}

/// FP register load/store formats.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FFmt {
    /// `ldfs`/`stfs`: 4 bytes, converted single↔register (f64) format.
    S,
    /// `ldfd`/`stfd`: 8 bytes, double format.
    D,
    /// `ldf8`/`stf8`: 8 raw bytes into/out of the significand — the
    /// format used for packed (SIMD) data.
    Raw,
}

impl FFmt {
    /// Access width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            FFmt::S => 4,
            FFmt::D | FFmt::Raw => 8,
        }
    }
}

/// `setf`/`getf` transfer kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FXfer {
    /// Raw significand bits.
    Sig,
    /// Single: GR low 32 bits as `f32`, converted to register format.
    S,
    /// Double: GR 64 bits as `f64` bit pattern.
    D,
}

/// A branch target.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Target {
    /// An unresolved assembler label (must be patched before execution).
    Label(u32),
    /// An absolute (bundle-aligned) address.
    Abs(u64),
    /// Indirect through a branch register.
    Reg(Br),
}

/// Execution unit classes for dispersal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Unit {
    /// Memory unit.
    M,
    /// Integer unit.
    I,
    /// Floating-point unit.
    F,
    /// Branch unit.
    B,
    /// Long-immediate (occupies I+X slots of an MLX bundle).
    L,
    /// A-type: may issue on either M or I.
    A,
}

/// A register reference, for generic def/use walking.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Reg {
    /// General register.
    G(Gr),
    /// FP register.
    F(Fr),
    /// Predicate register.
    P(Pr),
    /// Branch register.
    B(Br),
}

/// One Itanium instruction: a qualifying predicate plus an operation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Inst {
    /// Qualifying predicate; the instruction is a no-op when false.
    /// `p0` (always true) for unpredicated instructions.
    pub qp: Pr,
    /// The operation.
    pub op: Op,
}

impl Inst {
    /// An unpredicated instruction.
    pub fn new(op: Op) -> Inst {
        Inst {
            qp: crate::regs::P0,
            op,
        }
    }

    /// A predicated instruction.
    pub fn pred(qp: Pr, op: Op) -> Inst {
        Inst { qp, op }
    }
}

/// The operation part of an instruction.
///
/// Semantics notes live with the machine ([`crate::machine`]); encoding
/// fidelity notes (which real instruction each variant models) are on
/// the variants.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Op {
    // ----- A-type (M or I unit) -----
    /// `add d = a, b`.
    Add {
        /// Destination.
        d: Gr,
        /// First source.
        a: Gr,
        /// Second source.
        b: Gr,
    },
    /// `sub d = a, b`.
    Sub {
        /// Destination.
        d: Gr,
        /// Minuend.
        a: Gr,
        /// Subtrahend.
        b: Gr,
    },
    /// `adds`/`addl d = imm, a` (also `mov d = imm` with `a = r0`).
    AddImm {
        /// Destination.
        d: Gr,
        /// Immediate (sign-extended; `addl` range).
        imm: i64,
        /// Source.
        a: Gr,
    },
    /// `sub d = imm8, a` (reverse-subtract immediate).
    SubImm {
        /// Destination.
        d: Gr,
        /// Immediate minuend.
        imm: i64,
        /// Subtrahend register.
        a: Gr,
    },
    /// `and d = a, b`.
    And {
        /// Destination.
        d: Gr,
        /// Source.
        a: Gr,
        /// Source.
        b: Gr,
    },
    /// `or d = a, b`.
    Or {
        /// Destination.
        d: Gr,
        /// Source.
        a: Gr,
        /// Source.
        b: Gr,
    },
    /// `xor d = a, b`.
    Xor {
        /// Destination.
        d: Gr,
        /// Source.
        a: Gr,
        /// Source.
        b: Gr,
    },
    /// `andcm d = a, b` (a AND NOT b).
    AndCm {
        /// Destination.
        d: Gr,
        /// Source.
        a: Gr,
        /// Complemented source.
        b: Gr,
    },
    /// `and d = imm8, a`.
    AndImm {
        /// Destination.
        d: Gr,
        /// Immediate.
        imm: i64,
        /// Source.
        a: Gr,
    },
    /// `or d = imm8, a`.
    OrImm {
        /// Destination.
        d: Gr,
        /// Immediate.
        imm: i64,
        /// Source.
        a: Gr,
    },
    /// `xor d = imm8, a`.
    XorImm {
        /// Destination.
        d: Gr,
        /// Immediate.
        imm: i64,
        /// Source.
        a: Gr,
    },
    /// `shladd d = a, count, b` (d = (a << count) + b, count 1-4).
    Shladd {
        /// Destination.
        d: Gr,
        /// Shifted source.
        a: Gr,
        /// Shift count (1-4).
        count: u8,
        /// Added source.
        b: Gr,
    },
    /// `cmp.rel pt, pf = a, b`.
    Cmp {
        /// Relation.
        rel: CmpRel,
        /// Predicate set to the relation result.
        pt: Pr,
        /// Predicate set to the complement.
        pf: Pr,
        /// First operand.
        a: Gr,
        /// Second operand.
        b: Gr,
    },
    /// `cmp.rel pt, pf = imm8, b`.
    CmpImm {
        /// Relation.
        rel: CmpRel,
        /// True-predicate.
        pt: Pr,
        /// False-predicate.
        pf: Pr,
        /// Immediate first operand.
        imm: i64,
        /// Register second operand.
        b: Gr,
    },
    /// `tbit.z/nz pt, pf = r, pos` (pt = bit set, pf = bit clear).
    Tbit {
        /// Predicate set when the bit is 1.
        pt: Pr,
        /// Predicate set when the bit is 0.
        pf: Pr,
        /// Tested register.
        r: Gr,
        /// Bit position.
        pos: u8,
    },
    /// Parallel add on 1/2/4-byte lanes (`padd1/2/4`).
    Padd {
        /// Lane width in bytes.
        sz: u8,
        /// Destination.
        d: Gr,
        /// Source.
        a: Gr,
        /// Source.
        b: Gr,
    },
    /// Parallel subtract (`psub1/2/4`).
    Psub {
        /// Lane width in bytes.
        sz: u8,
        /// Destination.
        d: Gr,
        /// Source.
        a: Gr,
        /// Source.
        b: Gr,
    },
    /// Parallel 16-bit multiply, low halves (`pmpyshr2 d = a, b, 0`).
    Pmpy2 {
        /// Destination.
        d: Gr,
        /// Source.
        a: Gr,
        /// Source.
        b: Gr,
    },
    // ----- I-type -----
    /// `shl d = a, count` (immediate count).
    ShlImm {
        /// Destination.
        d: Gr,
        /// Source.
        a: Gr,
        /// Count (0-63).
        count: u8,
    },
    /// `shl d = a, c` (variable count; counts ≥ 64 yield 0).
    ShlVar {
        /// Destination.
        d: Gr,
        /// Source.
        a: Gr,
        /// Count register.
        c: Gr,
    },
    /// `shr`/`shr.u d = a, count`.
    ShrImm {
        /// Destination.
        d: Gr,
        /// Source.
        a: Gr,
        /// Count.
        count: u8,
        /// Arithmetic (sign-propagating) shift.
        signed: bool,
    },
    /// `shr`/`shr.u d = a, c` (variable count).
    ShrVar {
        /// Destination.
        d: Gr,
        /// Source.
        a: Gr,
        /// Count register.
        c: Gr,
        /// Arithmetic shift.
        signed: bool,
    },
    /// `extr`/`extr.u d = a, pos, len`.
    Extr {
        /// Destination.
        d: Gr,
        /// Source.
        a: Gr,
        /// Starting bit.
        pos: u8,
        /// Field length.
        len: u8,
        /// Sign-extend the field.
        signed: bool,
    },
    /// `dep d = src, target, pos, len` (deposit `src` field into
    /// `target`).
    Dep {
        /// Destination.
        d: Gr,
        /// Field source (low `len` bits used).
        src: Gr,
        /// Background value.
        target: Gr,
        /// Insertion position.
        pos: u8,
        /// Field length.
        len: u8,
    },
    /// `dep.z d = src, pos, len` (deposit into zero).
    DepZ {
        /// Destination.
        d: Gr,
        /// Field source.
        src: Gr,
        /// Insertion position.
        pos: u8,
        /// Field length.
        len: u8,
    },
    /// `sxt1/2/4 d = a`.
    Sxt {
        /// Destination.
        d: Gr,
        /// Source.
        a: Gr,
        /// Width in bytes (1, 2, or 4).
        size: u8,
    },
    /// `zxt1/2/4 d = a`.
    Zxt {
        /// Destination.
        d: Gr,
        /// Source.
        a: Gr,
        /// Width in bytes.
        size: u8,
    },
    /// `popcnt d = a`.
    Popcnt {
        /// Destination.
        d: Gr,
        /// Source.
        a: Gr,
    },
    /// `mov b = r`.
    MovToBr {
        /// Destination branch register.
        b: Br,
        /// Source.
        r: Gr,
    },
    /// `mov d = b`.
    MovFromBr {
        /// Destination.
        d: Gr,
        /// Source branch register.
        b: Br,
    },
    /// `mov d = ip` (address of the containing bundle).
    MovFromIp {
        /// Destination.
        d: Gr,
    },
    // ----- L+X -----
    /// `movl d = imm64` (occupies two slots of an MLX bundle).
    Movl {
        /// Destination.
        d: Gr,
        /// 64-bit immediate.
        imm: u64,
    },
    // ----- M-type -----
    /// `ld1/2/4/8[.s] d = [addr]`. With `spec`, faults are deferred to
    /// the destination NaT bit (control speculation).
    Ld {
        /// Access size in bytes (1, 2, 4, or 8).
        sz: u8,
        /// Destination.
        d: Gr,
        /// Address register.
        addr: Gr,
        /// `ld.s` speculative form.
        spec: bool,
    },
    /// `st1/2/4/8 [addr] = val`.
    St {
        /// Access size in bytes.
        sz: u8,
        /// Address register.
        addr: Gr,
        /// Value register.
        val: Gr,
    },
    /// `chk.s r, target` — branch to recovery if `r`'s NaT is set.
    ChkS {
        /// Checked register.
        r: Gr,
        /// Recovery target.
        target: Target,
    },
    /// `ldfs/ldfd/ldf8[.s] f = [addr]`.
    Ldf {
        /// Format.
        fmt: FFmt,
        /// Destination FP register.
        f: Fr,
        /// Address register.
        addr: Gr,
        /// Speculative form.
        spec: bool,
    },
    /// `stfs/stfd/stf8 [addr] = f`.
    Stf {
        /// Format.
        fmt: FFmt,
        /// Source FP register.
        f: Fr,
        /// Address register.
        addr: Gr,
    },
    /// `setf.sig/s/d f = r`.
    Setf {
        /// Transfer kind.
        kind: FXfer,
        /// Destination FP register.
        f: Fr,
        /// Source GR.
        r: Gr,
    },
    /// `getf.sig/s/d d = f`.
    Getf {
        /// Transfer kind.
        kind: FXfer,
        /// Destination GR.
        d: Gr,
        /// Source FP register.
        f: Fr,
    },
    /// `mf` — memory fence (a timing no-op here).
    Mf,
    // ----- F-type -----
    /// `fma d = a, b, c` (d = a×b + c, double).
    Fma {
        /// Destination.
        d: Fr,
        /// Multiplicand.
        a: Fr,
        /// Multiplier.
        b: Fr,
        /// Addend.
        c: Fr,
    },
    /// `fms d = a, b, c` (d = a×b − c).
    Fms {
        /// Destination.
        d: Fr,
        /// Multiplicand.
        a: Fr,
        /// Multiplier.
        b: Fr,
        /// Subtrahend.
        c: Fr,
    },
    /// `fnma d = a, b, c` (d = −a×b + c).
    Fnma {
        /// Destination.
        d: Fr,
        /// Multiplicand.
        a: Fr,
        /// Multiplier.
        b: Fr,
        /// Addend.
        c: Fr,
    },
    /// `fmin d = a, b` (returns `b` on NaN/tie, like SSE `MINSS`).
    Fmin {
        /// Destination.
        d: Fr,
        /// Source.
        a: Fr,
        /// Source.
        b: Fr,
    },
    /// `fmax d = a, b`.
    Fmax {
        /// Destination.
        d: Fr,
        /// Source.
        a: Fr,
        /// Source.
        b: Fr,
    },
    /// `fcmp.rel pt, pf = a, b`.
    Fcmp {
        /// Relation.
        rel: FcmpRel,
        /// True-predicate.
        pt: Pr,
        /// False-predicate.
        pf: Pr,
        /// First operand.
        a: Fr,
        /// Second operand.
        b: Fr,
    },
    /// `fcvt.fx[.trunc] d = a` — FP to signed integer (significand).
    FcvtFx {
        /// Destination (significand holds the integer).
        d: Fr,
        /// Source.
        a: Fr,
        /// Truncate toward zero (vs round-to-nearest).
        trunc: bool,
    },
    /// `fcvt.xf d = a` — signed integer (significand) to FP.
    FcvtXf {
        /// Destination.
        d: Fr,
        /// Source (significand read as `i64`).
        a: Fr,
    },
    /// `fmerge.s d = a, b` — sign of `a`, exponent+significand of `b`.
    /// `fmerge.s d = f0, a` is `fabs`; `fmerge.s d = a, a` is a copy.
    FmergeS {
        /// Destination.
        d: Fr,
        /// Sign source.
        a: Fr,
        /// Magnitude source.
        b: Fr,
    },
    /// `fmerge.ns d = a, b` — negated sign of `a`; `d = a, a` is `fneg`.
    FmergeNs {
        /// Destination.
        d: Fr,
        /// Sign source (negated).
        a: Fr,
        /// Magnitude source.
        b: Fr,
    },
    /// `frcpa d, p = a, b` — reciprocal approximation of `b` (~8.8 bits)
    /// and a predicate telling software whether to run the
    /// Newton-Raphson refinement.
    Frcpa {
        /// Approximation destination.
        d: Fr,
        /// Refinement predicate.
        p: Pr,
        /// Dividend (used for special-case handling).
        a: Fr,
        /// Divisor.
        b: Fr,
    },
    /// `frsqrta d, p = a` — reciprocal square root approximation.
    Frsqrta {
        /// Approximation destination.
        d: Fr,
        /// Refinement predicate.
        p: Pr,
        /// Source.
        a: Fr,
    },
    /// Exact square root. **Modeling substitution**: real Itanium has no
    /// FP sqrt instruction (software uses `frsqrta` + refinement); we
    /// provide the exact operation so the x87 `FSQRT` translation is
    /// bit-identical to the oracle. See DESIGN.md.
    Fsqrt {
        /// Destination.
        d: Fr,
        /// Source.
        a: Fr,
    },
    /// `fnorm.s d = a` — normalize/round to single precision (the
    /// sequence scalar-SSE translations use to match IA-32's per-op
    /// single rounding).
    FnormS {
        /// Destination.
        d: Fr,
        /// Source.
        a: Fr,
    },
    /// `fpma d = a, b, c` — parallel FP multiply-add on 2×f32 lanes of
    /// the significands.
    Fpma {
        /// Destination.
        d: Fr,
        /// Multiplicand.
        a: Fr,
        /// Multiplier.
        b: Fr,
        /// Addend.
        c: Fr,
    },
    /// `fpms d = a, b, c` — parallel multiply-subtract (a×b − c).
    Fpms {
        /// Destination.
        d: Fr,
        /// Multiplicand.
        a: Fr,
        /// Multiplier.
        b: Fr,
        /// Subtrahend.
        c: Fr,
    },
    /// `fpmin d = a, b` — parallel minimum on 2×f32 lanes.
    Fpmin {
        /// Destination.
        d: Fr,
        /// Source.
        a: Fr,
        /// Source.
        b: Fr,
    },
    /// `fpmax d = a, b`.
    Fpmax {
        /// Destination.
        d: Fr,
        /// Source.
        a: Fr,
        /// Source.
        b: Fr,
    },
    /// Parallel divide on 2×f32 lanes. **Modeling substitution** (real
    /// code uses `fprcpa` + refinement); exactness keeps `DIVPS`
    /// bit-identical to the oracle. See DESIGN.md.
    Fpdiv {
        /// Destination.
        d: Fr,
        /// Dividend lanes.
        a: Fr,
        /// Divisor lanes.
        b: Fr,
    },
    /// `xma.l/hu d = a, b, c` — integer multiply-add on significands.
    Xma {
        /// Destination.
        d: Fr,
        /// Multiplicand (significand as integer).
        a: Fr,
        /// Multiplier.
        b: Fr,
        /// Addend.
        c: Fr,
        /// Take the high 64 bits of the unsigned product.
        high: bool,
    },
    // ----- B-type -----
    /// `br.cond target` (unconditional when `qp` is `p0`).
    Br {
        /// Target.
        target: Target,
    },
    /// `br.call b = target` — saves the return address (next bundle).
    BrCall {
        /// Link register.
        b_save: Br,
        /// Target.
        target: Target,
    },
    /// `br.ret b` / indirect branch through `b`.
    BrRet {
        /// Branch register holding the target.
        b: Br,
    },
    /// `nop.m/i/f/b` (unit chosen by the bundler).
    Nop {
        /// Unit this no-op fills.
        unit: Unit,
    },
}

impl Op {
    /// The execution unit class this operation needs.
    pub fn unit(&self) -> Unit {
        use Op::*;
        match self {
            Add { .. }
            | Sub { .. }
            | AddImm { .. }
            | SubImm { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | AndCm { .. }
            | AndImm { .. }
            | OrImm { .. }
            | XorImm { .. }
            | Shladd { .. }
            | Cmp { .. }
            | CmpImm { .. } => Unit::A,
            Tbit { .. }
            | ShlImm { .. }
            | ShlVar { .. }
            | ShrImm { .. }
            | ShrVar { .. }
            | Extr { .. }
            | Dep { .. }
            | DepZ { .. }
            | Sxt { .. }
            | Zxt { .. }
            | Popcnt { .. }
            | MovToBr { .. }
            | MovFromBr { .. }
            | MovFromIp { .. }
            | Padd { .. }
            | Psub { .. }
            | Pmpy2 { .. } => Unit::I,
            Movl { .. } => Unit::L,
            Ld { .. } | St { .. } | Ldf { .. } | Stf { .. } | Setf { .. } | Getf { .. } | Mf => {
                Unit::M
            }
            ChkS { .. } => Unit::A, // chk.s may issue on M or I
            Fma { .. }
            | Fms { .. }
            | Fnma { .. }
            | Fmin { .. }
            | Fmax { .. }
            | Fcmp { .. }
            | FcvtFx { .. }
            | FcvtXf { .. }
            | FmergeS { .. }
            | FmergeNs { .. }
            | Frcpa { .. }
            | FnormS { .. }
            | Frsqrta { .. }
            | Fsqrt { .. }
            | Fpma { .. }
            | Fpms { .. }
            | Fpmin { .. }
            | Fpmax { .. }
            | Fpdiv { .. }
            | Xma { .. } => Unit::F,
            Br { .. } | BrCall { .. } | BrRet { .. } => Unit::B,
            Nop { unit } => *unit,
        }
    }

    /// True if this is any branch (including `chk.s`, which transfers
    /// control on failure).
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Op::Br { .. } | Op::BrCall { .. } | Op::BrRet { .. } | Op::ChkS { .. }
        )
    }

    /// True for memory accesses (used by the scheduler's ordering rules).
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Op::Ld { .. } | Op::St { .. } | Op::Ldf { .. } | Op::Stf { .. }
        )
    }

    /// True for stores (never reorderable across commit points).
    pub fn is_store(&self) -> bool {
        matches!(self, Op::St { .. } | Op::Stf { .. })
    }

    /// True if execution of this op may fault (memory or deferred check).
    pub fn can_fault(&self) -> bool {
        match self {
            Op::Ld { spec, .. } | Op::Ldf { spec, .. } => !spec,
            Op::St { .. } | Op::Stf { .. } => true,
            _ => false,
        }
    }

    /// Walks every register operand; `cb(reg, is_def)`.
    pub fn visit_regs(&self, cb: &mut dyn FnMut(Reg, bool)) {
        use Op::*;
        use Reg::*;
        match *self {
            Add { d, a, b }
            | Sub { d, a, b }
            | And { d, a, b }
            | Or { d, a, b }
            | Xor { d, a, b }
            | AndCm { d, a, b } => {
                cb(G(a), false);
                cb(G(b), false);
                cb(G(d), true);
            }
            AddImm { d, a, .. }
            | SubImm { d, a, .. }
            | AndImm { d, a, .. }
            | OrImm { d, a, .. }
            | XorImm { d, a, .. } => {
                cb(G(a), false);
                cb(G(d), true);
            }
            Shladd { d, a, b, .. } => {
                cb(G(a), false);
                cb(G(b), false);
                cb(G(d), true);
            }
            Cmp { pt, pf, a, b, .. } => {
                cb(G(a), false);
                cb(G(b), false);
                cb(P(pt), true);
                cb(P(pf), true);
            }
            CmpImm { pt, pf, b, .. } => {
                cb(G(b), false);
                cb(P(pt), true);
                cb(P(pf), true);
            }
            Tbit { pt, pf, r, .. } => {
                cb(G(r), false);
                cb(P(pt), true);
                cb(P(pf), true);
            }
            Padd { d, a, b, .. } | Psub { d, a, b, .. } | Pmpy2 { d, a, b } => {
                cb(G(a), false);
                cb(G(b), false);
                cb(G(d), true);
            }
            ShlImm { d, a, .. } | ShrImm { d, a, .. } => {
                cb(G(a), false);
                cb(G(d), true);
            }
            ShlVar { d, a, c } | ShrVar { d, a, c, .. } => {
                cb(G(a), false);
                cb(G(c), false);
                cb(G(d), true);
            }
            Extr { d, a, .. } | Sxt { d, a, .. } | Zxt { d, a, .. } | Popcnt { d, a } => {
                cb(G(a), false);
                cb(G(d), true);
            }
            Dep { d, src, target, .. } => {
                cb(G(src), false);
                cb(G(target), false);
                cb(G(d), true);
            }
            DepZ { d, src, .. } => {
                cb(G(src), false);
                cb(G(d), true);
            }
            MovToBr { b, r } => {
                cb(G(r), false);
                cb(B(b), true);
            }
            MovFromBr { d, b } => {
                cb(B(b), false);
                cb(G(d), true);
            }
            MovFromIp { d } => cb(G(d), true),
            Movl { d, .. } => cb(G(d), true),
            Ld { d, addr, .. } => {
                cb(G(addr), false);
                cb(G(d), true);
            }
            St { addr, val, .. } => {
                cb(G(addr), false);
                cb(G(val), false);
            }
            ChkS { r, .. } => cb(G(r), false),
            Ldf { f, addr, .. } => {
                cb(G(addr), false);
                cb(F(f), true);
            }
            Stf { f, addr, .. } => {
                cb(G(addr), false);
                cb(F(f), false);
            }
            Setf { f, r, .. } => {
                cb(G(r), false);
                cb(F(f), true);
            }
            Getf { d, f, .. } => {
                cb(F(f), false);
                cb(G(d), true);
            }
            Mf => {}
            Fma { d, a, b, c }
            | Fms { d, a, b, c }
            | Fnma { d, a, b, c }
            | Fpma { d, a, b, c }
            | Fpms { d, a, b, c } => {
                cb(F(a), false);
                cb(F(b), false);
                cb(F(c), false);
                cb(F(d), true);
            }
            Xma { d, a, b, c, .. } => {
                cb(F(a), false);
                cb(F(b), false);
                cb(F(c), false);
                cb(F(d), true);
            }
            Fmin { d, a, b }
            | Fmax { d, a, b }
            | Fpmin { d, a, b }
            | Fpmax { d, a, b }
            | Fpdiv { d, a, b }
            | FmergeS { d, a, b }
            | FmergeNs { d, a, b } => {
                cb(F(a), false);
                cb(F(b), false);
                cb(F(d), true);
            }
            Fcmp { pt, pf, a, b, .. } => {
                cb(F(a), false);
                cb(F(b), false);
                cb(P(pt), true);
                cb(P(pf), true);
            }
            FcvtFx { d, a, .. } | FcvtXf { d, a } | Fsqrt { d, a } | FnormS { d, a } => {
                cb(F(a), false);
                cb(F(d), true);
            }
            Frcpa { d, p, a, b } => {
                cb(F(a), false);
                cb(F(b), false);
                cb(F(d), true);
                cb(P(p), true);
            }
            Frsqrta { d, p, a } => {
                cb(F(a), false);
                cb(F(d), true);
                cb(P(p), true);
            }
            Br { target } => {
                if let Target::Reg(b) = target {
                    cb(B(b), false);
                }
            }
            BrCall { b_save, target } => {
                if let Target::Reg(b) = target {
                    cb(B(b), false);
                }
                cb(B(b_save), true);
            }
            BrRet { b } => cb(B(b), false),
            Nop { .. } => {}
        }
    }

    /// Collects the registers read (includes the qualifying predicate
    /// only via [`Inst`]-level helpers).
    pub fn uses(&self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(4);
        self.visit_regs(&mut |r, is_def| {
            if !is_def {
                v.push(r);
            }
        });
        v
    }

    /// Collects the registers written.
    pub fn defs(&self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(2);
        self.visit_regs(&mut |r, is_def| {
            if is_def {
                v.push(r);
            }
        });
        v
    }

    /// Rewrites every register operand through `f` (used by renaming and
    /// virtual-register allocation). `f` must preserve the register
    /// class.
    pub fn map_regs(&mut self, f: &mut dyn FnMut(Reg, bool) -> Reg) {
        macro_rules! g {
            ($r:expr, $def:expr) => {
                match f(Reg::G(*$r), $def) {
                    Reg::G(x) => *$r = x,
                    _ => panic!("register class changed in map_regs"),
                }
            };
        }
        macro_rules! fr {
            ($r:expr, $def:expr) => {
                match f(Reg::F(*$r), $def) {
                    Reg::F(x) => *$r = x,
                    _ => panic!("register class changed in map_regs"),
                }
            };
        }
        macro_rules! p {
            ($r:expr, $def:expr) => {
                match f(Reg::P(*$r), $def) {
                    Reg::P(x) => *$r = x,
                    _ => panic!("register class changed in map_regs"),
                }
            };
        }
        use Op::*;
        match self {
            Add { d, a, b }
            | Sub { d, a, b }
            | And { d, a, b }
            | Or { d, a, b }
            | Xor { d, a, b }
            | AndCm { d, a, b }
            | Shladd { d, a, b, .. }
            | Padd { d, a, b, .. }
            | Psub { d, a, b, .. }
            | Pmpy2 { d, a, b } => {
                g!(a, false);
                g!(b, false);
                g!(d, true);
            }
            AddImm { d, a, .. }
            | SubImm { d, a, .. }
            | AndImm { d, a, .. }
            | OrImm { d, a, .. }
            | XorImm { d, a, .. }
            | ShlImm { d, a, .. }
            | ShrImm { d, a, .. }
            | Extr { d, a, .. }
            | Sxt { d, a, .. }
            | Zxt { d, a, .. }
            | Popcnt { d, a } => {
                g!(a, false);
                g!(d, true);
            }
            Cmp { pt, pf, a, b, .. } => {
                g!(a, false);
                g!(b, false);
                p!(pt, true);
                p!(pf, true);
            }
            CmpImm { pt, pf, b, .. } => {
                g!(b, false);
                p!(pt, true);
                p!(pf, true);
            }
            Tbit { pt, pf, r, .. } => {
                g!(r, false);
                p!(pt, true);
                p!(pf, true);
            }
            ShlVar { d, a, c } | ShrVar { d, a, c, .. } => {
                g!(a, false);
                g!(c, false);
                g!(d, true);
            }
            Dep { d, src, target, .. } => {
                g!(src, false);
                g!(target, false);
                g!(d, true);
            }
            DepZ { d, src, .. } => {
                g!(src, false);
                g!(d, true);
            }
            MovToBr { r, .. } => g!(r, false),
            MovFromBr { d, .. } | MovFromIp { d } | Movl { d, .. } => g!(d, true),
            Ld { d, addr, .. } => {
                g!(addr, false);
                g!(d, true);
            }
            St { addr, val, .. } => {
                g!(addr, false);
                g!(val, false);
            }
            ChkS { r, .. } => g!(r, false),
            Ldf { f: fd, addr, .. } => {
                g!(addr, false);
                fr!(fd, true);
            }
            Stf { f: fs, addr, .. } => {
                g!(addr, false);
                fr!(fs, false);
            }
            Setf { f: fd, r, .. } => {
                g!(r, false);
                fr!(fd, true);
            }
            Getf { d, f: fs, .. } => {
                fr!(fs, false);
                g!(d, true);
            }
            Mf | Nop { .. } | Br { .. } | BrRet { .. } | BrCall { .. } => {}
            Fma { d, a, b, c }
            | Fms { d, a, b, c }
            | Fnma { d, a, b, c }
            | Fpma { d, a, b, c }
            | Fpms { d, a, b, c }
            | Xma { d, a, b, c, .. } => {
                fr!(a, false);
                fr!(b, false);
                fr!(c, false);
                fr!(d, true);
            }
            Fmin { d, a, b }
            | Fmax { d, a, b }
            | Fpmin { d, a, b }
            | Fpmax { d, a, b }
            | Fpdiv { d, a, b }
            | FmergeS { d, a, b }
            | FmergeNs { d, a, b } => {
                fr!(a, false);
                fr!(b, false);
                fr!(d, true);
            }
            Fcmp { pt, pf, a, b, .. } => {
                fr!(a, false);
                fr!(b, false);
                p!(pt, true);
                p!(pf, true);
            }
            FcvtFx { d, a, .. } | FcvtXf { d, a } | Fsqrt { d, a } | FnormS { d, a } => {
                fr!(a, false);
                fr!(d, true);
            }
            Frcpa { d, p, a, b } => {
                fr!(a, false);
                fr!(b, false);
                fr!(d, true);
                p!(p, true);
            }
            Frsqrta { d, p, a } => {
                fr!(a, false);
                fr!(d, true);
                p!(p, true);
            }
        }
    }

    /// The branch target, if this is a direct branch/check.
    pub fn target(&self) -> Option<Target> {
        match self {
            Op::Br { target } | Op::BrCall { target, .. } | Op::ChkS { target, .. } => {
                Some(*target)
            }
            _ => None,
        }
    }

    /// Rewrites the branch target (label patching).
    pub fn set_target(&mut self, t: Target) {
        match self {
            Op::Br { target } | Op::BrCall { target, .. } | Op::ChkS { target, .. } => *target = t,
            _ => panic!("set_target on a non-branch"),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.qp.0 != 0 {
            write!(f, "({}) ", self.qp)?;
        }
        write!(f, "{}", self.op)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Op::*;
        fn t(x: &Target) -> String {
            match x {
                Target::Label(l) => format!("L{l}"),
                Target::Abs(a) => format!("{a:#x}"),
                Target::Reg(b) => b.to_string(),
            }
        }
        match self {
            Add { d, a, b } => write!(f, "add {d} = {a}, {b}"),
            Sub { d, a, b } => write!(f, "sub {d} = {a}, {b}"),
            AddImm { d, imm, a } => write!(f, "adds {d} = {imm}, {a}"),
            SubImm { d, imm, a } => write!(f, "sub {d} = {imm}, {a}"),
            And { d, a, b } => write!(f, "and {d} = {a}, {b}"),
            Or { d, a, b } => write!(f, "or {d} = {a}, {b}"),
            Xor { d, a, b } => write!(f, "xor {d} = {a}, {b}"),
            AndCm { d, a, b } => write!(f, "andcm {d} = {a}, {b}"),
            AndImm { d, imm, a } => write!(f, "and {d} = {imm}, {a}"),
            OrImm { d, imm, a } => write!(f, "or {d} = {imm}, {a}"),
            XorImm { d, imm, a } => write!(f, "xor {d} = {imm}, {a}"),
            Shladd { d, a, count, b } => write!(f, "shladd {d} = {a}, {count}, {b}"),
            Cmp { rel, pt, pf, a, b } => {
                write!(f, "cmp.{} {pt}, {pf} = {a}, {b}", rel.mnemonic())
            }
            CmpImm {
                rel,
                pt,
                pf,
                imm,
                b,
            } => {
                write!(f, "cmp.{} {pt}, {pf} = {imm}, {b}", rel.mnemonic())
            }
            Tbit { pt, pf, r, pos } => write!(f, "tbit {pt}, {pf} = {r}, {pos}"),
            Padd { sz, d, a, b } => write!(f, "padd{sz} {d} = {a}, {b}"),
            Psub { sz, d, a, b } => write!(f, "psub{sz} {d} = {a}, {b}"),
            Pmpy2 { d, a, b } => write!(f, "pmpyshr2 {d} = {a}, {b}, 0"),
            ShlImm { d, a, count } => write!(f, "shl {d} = {a}, {count}"),
            ShlVar { d, a, c } => write!(f, "shl {d} = {a}, {c}"),
            ShrImm {
                d,
                a,
                count,
                signed,
            } => write!(
                f,
                "shr{} {d} = {a}, {count}",
                if *signed { "" } else { ".u" }
            ),
            ShrVar { d, a, c, signed } => {
                write!(f, "shr{} {d} = {a}, {c}", if *signed { "" } else { ".u" })
            }
            Extr {
                d,
                a,
                pos,
                len,
                signed,
            } => write!(
                f,
                "extr{} {d} = {a}, {pos}, {len}",
                if *signed { "" } else { ".u" }
            ),
            Dep {
                d,
                src,
                target,
                pos,
                len,
            } => write!(f, "dep {d} = {src}, {target}, {pos}, {len}"),
            DepZ { d, src, pos, len } => write!(f, "dep.z {d} = {src}, {pos}, {len}"),
            Sxt { d, a, size } => write!(f, "sxt{size} {d} = {a}"),
            Zxt { d, a, size } => write!(f, "zxt{size} {d} = {a}"),
            Popcnt { d, a } => write!(f, "popcnt {d} = {a}"),
            MovToBr { b, r } => write!(f, "mov {b} = {r}"),
            MovFromBr { d, b } => write!(f, "mov {d} = {b}"),
            MovFromIp { d } => write!(f, "mov {d} = ip"),
            Movl { d, imm } => write!(f, "movl {d} = {imm:#x}"),
            Ld { sz, d, addr, spec } => {
                write!(f, "ld{sz}{} {d} = [{addr}]", if *spec { ".s" } else { "" })
            }
            St { sz, addr, val } => write!(f, "st{sz} [{addr}] = {val}"),
            ChkS { r, target } => write!(f, "chk.s {r}, {}", t(target)),
            Ldf {
                fmt,
                f: fr,
                addr,
                spec,
            } => {
                let m = match fmt {
                    FFmt::S => "ldfs",
                    FFmt::D => "ldfd",
                    FFmt::Raw => "ldf8",
                };
                write!(f, "{m}{} {fr} = [{addr}]", if *spec { ".s" } else { "" })
            }
            Stf { fmt, f: fr, addr } => {
                let m = match fmt {
                    FFmt::S => "stfs",
                    FFmt::D => "stfd",
                    FFmt::Raw => "stf8",
                };
                write!(f, "{m} [{addr}] = {fr}")
            }
            Setf { kind, f: fr, r } => {
                let k = match kind {
                    FXfer::Sig => "sig",
                    FXfer::S => "s",
                    FXfer::D => "d",
                };
                write!(f, "setf.{k} {fr} = {r}")
            }
            Getf { kind, d, f: fr } => {
                let k = match kind {
                    FXfer::Sig => "sig",
                    FXfer::S => "s",
                    FXfer::D => "d",
                };
                write!(f, "getf.{k} {d} = {fr}")
            }
            Mf => write!(f, "mf"),
            Fma { d, a, b, c } => write!(f, "fma {d} = {a}, {b}, {c}"),
            Fms { d, a, b, c } => write!(f, "fms {d} = {a}, {b}, {c}"),
            Fnma { d, a, b, c } => write!(f, "fnma {d} = {a}, {b}, {c}"),
            Fmin { d, a, b } => write!(f, "fmin {d} = {a}, {b}"),
            Fmax { d, a, b } => write!(f, "fmax {d} = {a}, {b}"),
            Fcmp { rel, pt, pf, a, b } => write!(f, "fcmp.{rel:?} {pt}, {pf} = {a}, {b}"),
            FcvtFx { d, a, trunc } => {
                write!(f, "fcvt.fx{} {d} = {a}", if *trunc { ".trunc" } else { "" })
            }
            FcvtXf { d, a } => write!(f, "fcvt.xf {d} = {a}"),
            FmergeS { d, a, b } => write!(f, "fmerge.s {d} = {a}, {b}"),
            FmergeNs { d, a, b } => write!(f, "fmerge.ns {d} = {a}, {b}"),
            Frcpa { d, p, a, b } => write!(f, "frcpa {d}, {p} = {a}, {b}"),
            Frsqrta { d, p, a } => write!(f, "frsqrta {d}, {p} = {a}"),
            Fsqrt { d, a } => write!(f, "fsqrt* {d} = {a}"),
            FnormS { d, a } => write!(f, "fnorm.s {d} = {a}"),
            Fpma { d, a, b, c } => write!(f, "fpma {d} = {a}, {b}, {c}"),
            Fpms { d, a, b, c } => write!(f, "fpms {d} = {a}, {b}, {c}"),
            Fpmin { d, a, b } => write!(f, "fpmin {d} = {a}, {b}"),
            Fpmax { d, a, b } => write!(f, "fpmax {d} = {a}, {b}"),
            Fpdiv { d, a, b } => write!(f, "fpdiv* {d} = {a}, {b}"),
            Xma { d, a, b, c, high } => write!(
                f,
                "xma.{} {d} = {a}, {b}, {c}",
                if *high { "hu" } else { "l" }
            ),
            Br { target } => write!(f, "br {}", t(target)),
            BrCall { b_save, target } => write!(f, "br.call {b_save} = {}", t(target)),
            BrRet { b } => write!(f, "br.ret {b}"),
            Nop { unit } => write!(f, "nop.{unit:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::*;

    #[test]
    fn units() {
        assert_eq!(
            Op::Add {
                d: Gr(3),
                a: Gr(1),
                b: Gr(2)
            }
            .unit(),
            Unit::A
        );
        assert_eq!(
            Op::Ld {
                sz: 4,
                d: Gr(3),
                addr: Gr(4),
                spec: false
            }
            .unit(),
            Unit::M
        );
        assert_eq!(
            Op::Fma {
                d: Fr(6),
                a: Fr(2),
                b: Fr(3),
                c: Fr(4)
            }
            .unit(),
            Unit::F
        );
        assert_eq!(
            Op::Br {
                target: Target::Abs(0)
            }
            .unit(),
            Unit::B
        );
        assert_eq!(Op::Movl { d: Gr(3), imm: 0 }.unit(), Unit::L);
    }

    #[test]
    fn defs_and_uses() {
        let op = Op::Add {
            d: Gr(3),
            a: Gr(1),
            b: Gr(2),
        };
        assert_eq!(op.defs(), vec![Reg::G(Gr(3))]);
        assert_eq!(op.uses(), vec![Reg::G(Gr(1)), Reg::G(Gr(2))]);

        let st = Op::St {
            sz: 4,
            addr: Gr(5),
            val: Gr(6),
        };
        assert!(st.defs().is_empty());
        assert_eq!(st.uses().len(), 2);

        let cmp = Op::Cmp {
            rel: CmpRel::Eq,
            pt: Pr(1),
            pf: Pr(2),
            a: Gr(1),
            b: Gr(2),
        };
        assert_eq!(cmp.defs(), vec![Reg::P(Pr(1)), Reg::P(Pr(2))]);
    }

    #[test]
    fn map_regs_renames() {
        let mut op = Op::Add {
            d: Gr(VIRT_BASE),
            a: Gr(VIRT_BASE + 1),
            b: Gr(2),
        };
        op.map_regs(&mut |r, _| match r {
            Reg::G(g) if g.is_virtual() => Reg::G(Gr(g.0 - VIRT_BASE + 50)),
            other => other,
        });
        assert_eq!(
            op,
            Op::Add {
                d: Gr(50),
                a: Gr(51),
                b: Gr(2)
            }
        );
    }

    #[test]
    fn classification() {
        assert!(Op::Br {
            target: Target::Abs(0)
        }
        .is_branch());
        assert!(Op::St {
            sz: 4,
            addr: Gr(1),
            val: Gr(2)
        }
        .is_store());
        assert!(Op::Ld {
            sz: 4,
            d: Gr(1),
            addr: Gr(2),
            spec: false
        }
        .can_fault());
        assert!(!Op::Ld {
            sz: 4,
            d: Gr(1),
            addr: Gr(2),
            spec: true
        }
        .can_fault());
    }

    #[test]
    fn display_smoke() {
        let i = Inst::pred(
            Pr(3),
            Op::AddImm {
                d: Gr(4),
                imm: -4,
                a: Gr(12),
            },
        );
        assert_eq!(i.to_string(), "(p3) adds r4 = -4, r12");
    }
}
