//! # Itanium (IPF) substrate
//!
//! A functional + cycle-approximate model of an Itanium-like EPIC core:
//! 128 general registers with NaT bits, 128 FP registers, 64 predicates,
//! 8 branch registers, three-slot bundles with dispersal templates and
//! stop bits, predication, control speculation (`ld.s`/`chk.s`),
//! `frcpa`-based division, parallel (multimedia) integer ops, and a
//! high-cost misalignment fault — every architectural mechanism the
//! IA-32 Execution Layer paper's translation techniques rely on.
//!
//! The instruction type ([`inst::Op`]) doubles as the translator's
//! intermediate language: register numbers above
//! [`regs::VIRT_BASE`] are virtual and must be allocated before
//! execution.
//!
//! ## Example
//!
//! ```rust
//! use ipf::asm::CodeBuilder;
//! use ipf::inst::{Op, Target};
//! use ipf::machine::{CodeArena, Machine, StopReason, Timing, VecBus};
//! use ipf::regs::{Gr, R0};
//!
//! let mut cb = CodeBuilder::new();
//! cb.push(Op::AddImm { d: Gr(32), imm: 40, a: R0 });
//! cb.stop();
//! cb.push(Op::AddImm { d: Gr(32), imm: 2, a: Gr(32) });
//! cb.stop();
//! cb.push(Op::Br { target: Target::Abs(0xE000_0000) }); // exit stub
//!
//! let (bundles, _) = cb.assemble(0x1_0000);
//! let mut arena = CodeArena::new(0x1_0000);
//! arena.append(bundles, 0);
//! let mut machine = Machine::new(arena, Timing::default());
//! machine.set_ip(0x1_0000, 0);
//! let mut bus = VecBus::new(64);
//! let stop = machine.run(&mut bus, 1000);
//! assert!(matches!(stop, StopReason::ExternalBranch { target: 0xE000_0000, .. }));
//! assert_eq!(machine.gr[32], 42);
//! ```

pub mod asm;
pub mod bundle;
pub mod inst;
pub mod machine;
pub mod regs;

pub use bundle::{Bundle, Template};
pub use inst::{Inst, Op, Target, Unit};
pub use machine::{Bus, BusError, CodeArena, MachFault, Machine, StopReason, Timing};
pub use regs::{Br, Fr, Gr, Pr};
