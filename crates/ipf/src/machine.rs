//! The Itanium machine: functional execution plus a dispersal-based
//! cycle model.
//!
//! Functional semantics are exact (the translator's differential tests
//! depend on them); timing is approximate but shape-preserving: in-order
//! EPIC issue of instruction groups delimited by stop bits, port limits
//! (2M/2I/2F/3B, ≤6 per cycle), scoreboard stalls on operand readiness,
//! and a taken-branch bubble.
//!
//! Faults stop the machine with all earlier slots committed and the
//! faulting slot unexecuted — the translator's precise-exception
//! machinery builds on this.

use crate::bundle::Bundle;
use crate::inst::{FFmt, FXfer, Op, Target, Unit};
use crate::regs::{NUM_BR, NUM_FR, NUM_GR, NUM_PR};
use std::collections::HashMap;

/// Errors a [`Bus`] access can produce.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BusError {
    /// No memory mapped at the address.
    Unmapped,
    /// Read permission missing.
    NoRead,
    /// Write permission missing.
    NoWrite,
    /// Store hit a write-protected translated-code page.
    Smc,
}

/// Data memory seen by the machine. Alignment is checked by the machine
/// itself (misalignment is an architectural fault here, unlike IA-32).
pub trait Bus {
    /// Reads `size` bytes (≤ 8), little-endian.
    ///
    /// # Errors
    ///
    /// Any [`BusError`].
    fn read(&mut self, addr: u64, size: u32) -> Result<u64, BusError>;

    /// Writes the low `size` bytes of `val`.
    ///
    /// # Errors
    ///
    /// Any [`BusError`].
    fn write(&mut self, addr: u64, size: u32, val: u64) -> Result<(), BusError>;
}

/// Machine-level faults.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MachFault {
    /// A bus (page/protection) fault.
    Bus {
        /// What the bus reported.
        err: BusError,
        /// Faulting data address.
        addr: u64,
        /// True for stores.
        write: bool,
    },
    /// Misaligned data access (high-cost, OS-visible on Itanium).
    Misalign {
        /// Faulting address.
        addr: u64,
        /// Access size in bytes.
        size: u8,
        /// True for stores.
        write: bool,
    },
    /// Consumption of a NaT (deferred speculation fault) by a
    /// non-speculative instruction.
    NatConsumption,
}

impl std::fmt::Display for MachFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachFault::Bus { err, addr, write } => write!(
                f,
                "bus fault {err:?} on {} at {addr:#x}",
                if *write { "write" } else { "read" }
            ),
            MachFault::Misalign { addr, size, write } => write!(
                f,
                "misaligned {}-byte {} at {addr:#x}",
                size,
                if *write { "write" } else { "read" }
            ),
            MachFault::NatConsumption => write!(f, "NaT consumption"),
        }
    }
}

/// Why [`Machine::run`] stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// Control left the code arena (stub/exit branch); `target` is the
    /// branch destination and `from` the address of the branching bundle.
    ExternalBranch {
        /// Destination address (outside the arena).
        target: u64,
        /// Bundle address the branch came from.
        from: u64,
    },
    /// An architectural fault at `ip`/`slot` (that slot did not execute).
    Fault {
        /// The fault.
        fault: MachFault,
        /// Bundle address of the faulting slot.
        ip: u64,
        /// Slot index within the bundle.
        slot: u8,
    },
    /// The instruction limit was reached.
    InstLimit,
}

/// Timing parameters for the Itanium 2-like core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Timing {
    /// Clock in MHz (the paper measures on 1.0 and 1.5 GHz parts).
    pub clock_mhz: u32,
    /// Integer load-to-use latency.
    pub lat_ld: u32,
    /// FP load-to-use latency.
    pub lat_ldf: u32,
    /// FP arithmetic latency.
    pub lat_fp: u32,
    /// `getf`/`setf` cross-file latency.
    pub lat_xfer: u32,
    /// Taken-branch bubble cycles.
    pub taken_branch: u32,
    /// Extra bubble for indirect branches.
    pub indirect_branch: u32,
}

impl Default for Timing {
    fn default() -> Timing {
        Timing {
            clock_mhz: 1500,
            lat_ld: 2,
            lat_ldf: 6,
            lat_fp: 4,
            lat_xfer: 5,
            taken_branch: 1,
            indirect_branch: 3,
        }
    }
}

/// A contiguous region of bundles at a base address, with a per-bundle
/// *region id* used for cycle attribution (the translator tags bundles
/// as cold code, hot code, stubs, …).
///
/// The arena also keeps a free list of reclaimable extents so the
/// translator can evict individual blocks and reuse their space instead
/// of flushing wholesale: [`CodeArena::release`] returns an extent to
/// the free list, [`CodeArena::alloc`] carves a hole back out, and
/// [`CodeArena::place`] installs fresh bundles into it.
#[derive(Debug, Default)]
pub struct CodeArena {
    base: u64,
    bundles: Vec<Bundle>,
    region: Vec<u32>,
    /// Free extents as `(bundle_index, bundle_count)`, kept sorted by
    /// index and coalesced.
    free: Vec<(usize, usize)>,
}

impl CodeArena {
    /// An empty arena based at `base` (must be 16-byte aligned).
    pub fn new(base: u64) -> CodeArena {
        assert_eq!(base % Bundle::SIZE, 0, "arena base must be bundle-aligned");
        CodeArena {
            base,
            bundles: Vec::new(),
            region: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.bundles.len() as u64 * Bundle::SIZE
    }

    /// Appends bundles tagged with `region`, returning their start
    /// address.
    pub fn append(&mut self, bundles: Vec<Bundle>, region: u32) -> u64 {
        let addr = self.end();
        self.region
            .extend(std::iter::repeat_n(region, bundles.len()));
        self.bundles.extend(bundles);
        addr
    }

    /// Truncates the arena back to `addr` (translation-cache flush).
    /// The free list is cleared: everything past `addr` is gone and
    /// everything before it is live again.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not within the arena or misaligned.
    pub fn truncate(&mut self, addr: u64) {
        assert!(addr >= self.base && addr <= self.end());
        let n = ((addr - self.base) / Bundle::SIZE) as usize;
        self.bundles.truncate(n);
        self.region.truncate(n);
        self.free.clear();
    }

    /// Returns the extent `[start, end)` to the free list, overwriting
    /// its bundles with all-nop bundles (region 0) so stale control flow
    /// into it is inert, and coalescing with adjacent free extents.
    ///
    /// # Panics
    ///
    /// Panics if the extent is misaligned or out of bounds.
    pub fn release(&mut self, start: u64, end: u64) {
        assert!(start <= end, "inverted extent");
        if start == end {
            return;
        }
        let idx = self.index_of(start).expect("release start inside arena");
        assert_eq!((end - start) % Bundle::SIZE, 0, "misaligned extent end");
        let count = ((end - start) / Bundle::SIZE) as usize;
        assert!(idx + count <= self.bundles.len(), "extent past arena end");
        for b in &mut self.bundles[idx..idx + count] {
            *b = Bundle::nops();
        }
        for r in &mut self.region[idx..idx + count] {
            *r = 0;
        }
        let pos = self.free.partition_point(|&(i, _)| i < idx);
        debug_assert!(
            self.free.get(pos).is_none_or(|&(i, _)| idx + count <= i)
                && (pos == 0 || {
                    let (pi, pn) = self.free[pos - 1];
                    pi + pn <= idx
                }),
            "double release"
        );
        self.free.insert(pos, (idx, count));
        // Coalesce with the neighbours.
        if pos + 1 < self.free.len() && self.free[pos].0 + self.free[pos].1 == self.free[pos + 1].0
        {
            self.free[pos].1 += self.free[pos + 1].1;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == self.free[pos].0 {
            self.free[pos - 1].1 += self.free[pos].1;
            self.free.remove(pos);
        }
    }

    /// Carves `count` bundles out of the free list (best fit), returning
    /// the hole's start address, or `None` if no free extent is large
    /// enough. Use [`CodeArena::place`] to install code there.
    pub fn alloc(&mut self, count: usize) -> Option<u64> {
        if count == 0 {
            return None;
        }
        let best = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, &(_, n))| n >= count)
            .min_by_key(|(_, &(_, n))| n)?
            .0;
        let (idx, n) = self.free[best];
        if n == count {
            self.free.remove(best);
        } else {
            self.free[best] = (idx + count, n - count);
        }
        Some(self.base + idx as u64 * Bundle::SIZE)
    }

    /// Installs bundles into a hole previously returned by
    /// [`CodeArena::alloc`], returning their start address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the arena or the bundles overrun it.
    pub fn place(&mut self, addr: u64, bundles: Vec<Bundle>, region: u32) -> u64 {
        let idx = self.index_of(addr).expect("place address inside arena");
        assert!(
            idx + bundles.len() <= self.bundles.len(),
            "placed code overruns the arena"
        );
        for (k, b) in bundles.into_iter().enumerate() {
            self.bundles[idx + k] = b;
            self.region[idx + k] = region;
        }
        addr
    }

    /// Number of bundles currently on the free list.
    pub fn free_bundles(&self) -> usize {
        self.free.iter().map(|&(_, n)| n).sum()
    }

    /// Number of live (allocated) bundles: total minus free.
    pub fn live_len(&self) -> usize {
        self.bundles.len() - self.free_bundles()
    }

    /// Index of the bundle at `addr`, if inside the arena.
    pub fn index_of(&self, addr: u64) -> Option<usize> {
        if addr < self.base || addr >= self.end() || !addr.is_multiple_of(Bundle::SIZE) {
            return None;
        }
        Some(((addr - self.base) / Bundle::SIZE) as usize)
    }

    /// The bundle at `addr`.
    pub fn bundle_at(&self, addr: u64) -> Option<&Bundle> {
        self.index_of(addr).map(|i| &self.bundles[i])
    }

    /// Replaces one slot's operation (used to patch exit branches into
    /// direct block-to-block branches).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the arena.
    pub fn patch_slot(&mut self, addr: u64, slot: usize, op: Op) {
        let idx = self.index_of(addr).expect("patch address inside arena");
        self.bundles[idx].slots[slot].op = op;
    }

    /// FNV-1a checksum over the bundles in `[start, end)`, in their
    /// textual (assembly) form. Used by the engine's verify-on-dispatch
    /// integrity mode: a patched or corrupted slot changes the sum.
    pub fn checksum_range(&self, start: u64, end: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut addr = start;
        while addr < end {
            if let Some(b) = self.bundle_at(addr) {
                for byte in format!("{b}").bytes() {
                    h ^= byte as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
            }
            addr += Bundle::SIZE;
        }
        h
    }

    /// Number of bundles.
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// True if the arena holds no bundles.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    fn region_of(&self, idx: usize) -> u32 {
        self.region.get(idx).copied().unwrap_or(0)
    }
}

#[derive(Clone, Copy, Default)]
struct GroupAcc {
    read_ready_max: u64,
    m: u32,
    i: u32,
    f: u32,
    b: u32,
    slots: u32,
    writes: [(u8, u16, u32); 8], // (class, reg, latency)
    nwrites: usize,
    region: u32,
    active: bool,
}

/// The Itanium machine state and executor.
pub struct Machine {
    /// General registers (`r0` reads 0; writes to it are ignored).
    pub gr: [u64; NUM_GR as usize],
    /// NaT bits for the general registers.
    pub gr_nat: [bool; NUM_GR as usize],
    /// FP registers as raw 64-bit payloads (see [`crate::inst`] for the
    /// format conventions). `f0` = +0.0 and `f1` = +1.0 are enforced.
    pub fr: [u64; NUM_FR as usize],
    /// NaT-val bits for FP registers (speculative FP loads).
    pub fr_nat: [bool; NUM_FR as usize],
    /// Predicate registers (`p0` reads true).
    pub pr: [bool; NUM_PR as usize],
    /// Branch registers.
    pub br: [u64; NUM_BR as usize],
    /// Current bundle address.
    pub ip: u64,
    /// Current slot within the bundle.
    pub slot: u8,
    /// The code arena.
    pub arena: CodeArena,
    /// Total cycles elapsed.
    pub cycles: u64,
    /// Instructions (slots, including predicated-off) executed.
    pub inst_count: u64,
    /// Cycles attributed per region id.
    pub region_cycles: HashMap<u32, u64>,
    timing: Timing,
    // Scoreboard.
    gr_ready: [u64; NUM_GR as usize],
    fr_ready: [u64; NUM_FR as usize],
    pr_ready: [u64; NUM_PR as usize],
    br_ready: [u64; NUM_BR as usize],
    next_cycle: u64,
    group: GroupAcc,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Machine {{ ip: {:#x}.{}, cycles: {}, insts: {} }}",
            self.ip, self.slot, self.cycles, self.inst_count
        )
    }
}

const CLASS_G: u8 = 0;
const CLASS_F: u8 = 1;
const CLASS_P: u8 = 2;
const CLASS_B: u8 = 3;

impl Machine {
    /// A fresh machine with the given arena and timing.
    pub fn new(arena: CodeArena, timing: Timing) -> Machine {
        let mut m = Machine {
            gr: [0; NUM_GR as usize],
            gr_nat: [false; NUM_GR as usize],
            fr: [0; NUM_FR as usize],
            fr_nat: [false; NUM_FR as usize],
            pr: [false; NUM_PR as usize],
            br: [0; NUM_BR as usize],
            ip: 0,
            slot: 0,
            arena,
            cycles: 0,
            inst_count: 0,
            region_cycles: HashMap::new(),
            timing,
            gr_ready: [0; NUM_GR as usize],
            fr_ready: [0; NUM_FR as usize],
            pr_ready: [0; NUM_PR as usize],
            br_ready: [0; NUM_BR as usize],
            next_cycle: 0,
            group: GroupAcc::default(),
        };
        m.fr[1] = 1.0f64.to_bits();
        m.pr[0] = true;
        m
    }

    /// The timing parameters.
    pub fn timing(&self) -> &Timing {
        &self.timing
    }

    /// Adds `cycles` attributed to `region` (the translator charges its
    /// own translation overhead this way).
    pub fn charge(&mut self, region: u32, cycles: u64) {
        self.cycles += cycles;
        self.next_cycle += cycles;
        *self.region_cycles.entry(region).or_default() += cycles;
    }

    /// Sets the resume point.
    pub fn set_ip(&mut self, ip: u64, slot: u8) {
        self.ip = ip;
        self.slot = slot;
    }

    fn rd_gr(&self, r: crate::regs::Gr) -> u64 {
        self.gr[r.phys()]
    }

    fn wr_gr(&mut self, r: crate::regs::Gr, v: u64, nat: bool) {
        let i = r.phys();
        if i != 0 {
            self.gr[i] = v;
            self.gr_nat[i] = nat;
        }
    }

    fn rd_fr_f64(&self, r: crate::regs::Fr) -> f64 {
        f64::from_bits(self.fr[r.phys()])
    }

    fn rd_fr_raw(&self, r: crate::regs::Fr) -> u64 {
        self.fr[r.phys()]
    }

    /// Packed-single read: registers f0/f1 read as broadcast 0.0/1.0, as
    /// the architecture defines for parallel FP.
    fn rd_fr_packed(&self, r: crate::regs::Fr) -> (f32, f32) {
        match r.phys() {
            0 => (0.0, 0.0),
            1 => (1.0, 1.0),
            i => {
                let raw = self.fr[i];
                (
                    f32::from_bits(raw as u32),
                    f32::from_bits((raw >> 32) as u32),
                )
            }
        }
    }

    fn wr_fr(&mut self, r: crate::regs::Fr, raw: u64, nat: bool) {
        let i = r.phys();
        if i > 1 {
            self.fr[i] = raw;
            self.fr_nat[i] = nat;
        }
    }

    fn wr_pr(&mut self, r: crate::regs::Pr, v: bool) {
        let i = r.phys();
        if i != 0 {
            self.pr[i] = v;
        }
    }

    fn gr_nat_of(&self, r: crate::regs::Gr) -> bool {
        self.gr_nat[r.phys()]
    }

    // ---- timing ---------------------------------------------------------

    fn latency_of(&self, op: &Op) -> u32 {
        match op {
            Op::Ld { .. } => self.timing.lat_ld,
            Op::Ldf { .. } => self.timing.lat_ldf,
            Op::Setf { .. } | Op::Getf { .. } => self.timing.lat_xfer,
            Op::Fma { .. }
            | Op::Fms { .. }
            | Op::Fnma { .. }
            | Op::Fmin { .. }
            | Op::Fmax { .. }
            | Op::FcvtFx { .. }
            | Op::FcvtXf { .. }
            | Op::FmergeS { .. }
            | Op::FmergeNs { .. }
            | Op::Frcpa { .. }
            | Op::Frsqrta { .. }
            | Op::Fsqrt { .. }
            | Op::FnormS { .. }
            | Op::Fpma { .. }
            | Op::Fpms { .. }
            | Op::Fpmin { .. }
            | Op::Fpmax { .. }
            | Op::Fpdiv { .. }
            | Op::Xma { .. } => self.timing.lat_fp,
            Op::MovToBr { .. } | Op::MovFromBr { .. } => 2,
            Op::Fcmp { .. } => 2,
            _ => 1,
        }
    }

    fn account_slot(&mut self, inst: &crate::inst::Inst, bundle_idx: usize) {
        if !self.group.active {
            self.group = GroupAcc {
                region: self.arena.region_of(bundle_idx),
                active: true,
                ..GroupAcc::default()
            };
        }
        let lat = self.latency_of(&inst.op);
        // Qualifying predicate is a read.
        let qp_ready = self.pr_ready[inst.qp.phys()];
        let mut reads_max = self.group.read_ready_max.max(qp_ready);
        let mut writes: Vec<(u8, u16)> = Vec::with_capacity(2);
        inst.op.visit_regs(&mut |reg, is_def| {
            use crate::inst::Reg;
            let (class, idx) = match reg {
                Reg::G(r) => (CLASS_G, r.phys()),
                Reg::F(r) => (CLASS_F, r.phys()),
                Reg::P(r) => (CLASS_P, r.phys()),
                Reg::B(r) => (CLASS_B, r.phys()),
            };
            if is_def {
                writes.push((class, idx as u16));
            } else {
                let t = match class {
                    CLASS_G => self.gr_ready[idx],
                    CLASS_F => self.fr_ready[idx],
                    CLASS_P => self.pr_ready[idx],
                    _ => self.br_ready[idx],
                };
                if t > reads_max {
                    reads_max = t;
                }
            }
        });
        let g = &mut self.group;
        g.read_ready_max = reads_max;
        for (class, idx) in writes {
            if g.nwrites < g.writes.len() {
                g.writes[g.nwrites] = (class, idx, lat);
                g.nwrites += 1;
            }
        }
        match inst.op.unit() {
            Unit::M => g.m += 1,
            Unit::I | Unit::L => g.i += 1,
            Unit::F => g.f += 1,
            Unit::B => g.b += 1,
            Unit::A => {
                // Disperse A-type to the less-loaded of M/I.
                if g.m <= g.i {
                    g.m += 1;
                } else {
                    g.i += 1;
                }
            }
        }
        g.slots += 1;
    }

    fn close_group(&mut self, extra_bubble: u32) {
        if !self.group.active {
            // A bubble landing on an already-closed group must still be
            // attributed to a region, or sum(region_cycles) would drift
            // below `cycles`.
            if extra_bubble > 0 {
                *self.region_cycles.entry(self.group.region).or_default() += extra_bubble as u64;
            }
            self.next_cycle += extra_bubble as u64;
            self.cycles = self.next_cycle;
            return;
        }
        let g = self.group;
        let issue = self.next_cycle.max(g.read_ready_max);
        let width = [
            g.m.div_ceil(2),
            g.i.div_ceil(2),
            g.f.div_ceil(2),
            g.b.div_ceil(3),
            g.slots.div_ceil(6),
            1,
        ]
        .into_iter()
        .max()
        .unwrap() as u64;
        for k in 0..g.nwrites {
            let (class, idx, lat) = g.writes[k];
            let ready = issue + lat as u64;
            match class {
                CLASS_G => self.gr_ready[idx as usize] = ready,
                CLASS_F => self.fr_ready[idx as usize] = ready,
                CLASS_P => self.pr_ready[idx as usize] = ready,
                _ => self.br_ready[idx as usize] = ready,
            }
        }
        let after = issue + width + extra_bubble as u64;
        let spent = after - self.next_cycle;
        *self.region_cycles.entry(g.region).or_default() += spent;
        self.next_cycle = after;
        self.cycles = after;
        self.group = GroupAcc::default();
    }

    // ---- execution ------------------------------------------------------

    /// Runs until an external branch, fault, or `max_insts` slots.
    pub fn run(&mut self, bus: &mut dyn Bus, max_insts: u64) -> StopReason {
        let mut executed = 0u64;
        loop {
            let bundle_idx = match self.arena.index_of(self.ip) {
                Some(i) => i,
                None => {
                    let t = self.ip;
                    self.close_group(0);
                    return StopReason::ExternalBranch { target: t, from: t };
                }
            };
            let inst = self.arena.bundles[bundle_idx].slots[self.slot as usize];
            let stop = self.arena.bundles[bundle_idx].stops[self.slot as usize];
            self.inst_count += 1;
            executed += 1;
            self.account_slot(&inst, bundle_idx);

            let taken = if self.pr[inst.qp.phys()] {
                match self.exec_op(bus, &inst.op) {
                    Ok(t) => t,
                    Err(fault) => {
                        self.close_group(0);
                        return StopReason::Fault {
                            fault,
                            ip: self.ip,
                            slot: self.slot,
                        };
                    }
                }
            } else {
                None
            };

            match taken {
                Some(target) => {
                    let bubble = match inst.op {
                        Op::BrRet { .. } => self.timing.indirect_branch,
                        Op::Br {
                            target: Target::Reg(_),
                        } => self.timing.indirect_branch,
                        _ => self.timing.taken_branch,
                    };
                    self.close_group(bubble);
                    if self.arena.index_of(target).is_none() {
                        let from = self.ip;
                        self.ip = target;
                        self.slot = 0;
                        return StopReason::ExternalBranch { target, from };
                    }
                    self.ip = target;
                    self.slot = 0;
                }
                None => {
                    if stop {
                        self.close_group(0);
                    }
                    self.slot += 1;
                    if self.slot == 3 {
                        self.slot = 0;
                        self.ip += Bundle::SIZE;
                    }
                }
            }
            if executed >= max_insts {
                self.close_group(0);
                return StopReason::InstLimit;
            }
        }
    }

    /// Advances past the current (faulting) slot — used when the runtime
    /// emulates a misaligned access and resumes.
    pub fn skip_slot(&mut self) {
        self.slot += 1;
        if self.slot == 3 {
            self.slot = 0;
            self.ip += Bundle::SIZE;
        }
    }

    fn mem_read(
        &mut self,
        bus: &mut dyn Bus,
        addr: u64,
        size: u8,
        spec: bool,
    ) -> Result<Option<u64>, MachFault> {
        if !addr.is_multiple_of(size as u64) {
            if spec {
                return Ok(None); // deferred to NaT
            }
            return Err(MachFault::Misalign {
                addr,
                size,
                write: false,
            });
        }
        match bus.read(addr, size as u32) {
            Ok(v) => Ok(Some(v)),
            Err(e) if spec => {
                let _ = e;
                Ok(None)
            }
            Err(err) => Err(MachFault::Bus {
                err,
                addr,
                write: false,
            }),
        }
    }

    fn mem_write(
        &mut self,
        bus: &mut dyn Bus,
        addr: u64,
        size: u8,
        val: u64,
    ) -> Result<(), MachFault> {
        if !addr.is_multiple_of(size as u64) {
            return Err(MachFault::Misalign {
                addr,
                size,
                write: true,
            });
        }
        bus.write(addr, size as u32, val)
            .map_err(|err| MachFault::Bus {
                err,
                addr,
                write: true,
            })
    }

    /// Executes one operation; returns a taken-branch target if any.
    fn exec_op(&mut self, bus: &mut dyn Bus, op: &Op) -> Result<Option<u64>, MachFault> {
        use Op::*;
        // Integer ops propagate NaT from their GR sources.
        let nat2 = |m: &Machine, a, b| m.gr_nat_of(a) || m.gr_nat_of(b);
        match *op {
            Add { d, a, b } => {
                let v = self.rd_gr(a).wrapping_add(self.rd_gr(b));
                self.wr_gr(d, v, nat2(self, a, b));
            }
            Sub { d, a, b } => {
                let v = self.rd_gr(a).wrapping_sub(self.rd_gr(b));
                self.wr_gr(d, v, nat2(self, a, b));
            }
            AddImm { d, imm, a } => {
                let v = self.rd_gr(a).wrapping_add(imm as u64);
                self.wr_gr(d, v, self.gr_nat_of(a));
            }
            SubImm { d, imm, a } => {
                let v = (imm as u64).wrapping_sub(self.rd_gr(a));
                self.wr_gr(d, v, self.gr_nat_of(a));
            }
            And { d, a, b } => {
                let v = self.rd_gr(a) & self.rd_gr(b);
                self.wr_gr(d, v, nat2(self, a, b));
            }
            Or { d, a, b } => {
                let v = self.rd_gr(a) | self.rd_gr(b);
                self.wr_gr(d, v, nat2(self, a, b));
            }
            Xor { d, a, b } => {
                let v = self.rd_gr(a) ^ self.rd_gr(b);
                self.wr_gr(d, v, nat2(self, a, b));
            }
            AndCm { d, a, b } => {
                let v = self.rd_gr(a) & !self.rd_gr(b);
                self.wr_gr(d, v, nat2(self, a, b));
            }
            AndImm { d, imm, a } => {
                let v = self.rd_gr(a) & imm as u64;
                self.wr_gr(d, v, self.gr_nat_of(a));
            }
            OrImm { d, imm, a } => {
                let v = self.rd_gr(a) | imm as u64;
                self.wr_gr(d, v, self.gr_nat_of(a));
            }
            XorImm { d, imm, a } => {
                let v = self.rd_gr(a) ^ imm as u64;
                self.wr_gr(d, v, self.gr_nat_of(a));
            }
            Shladd { d, a, count, b } => {
                let v = (self.rd_gr(a) << count).wrapping_add(self.rd_gr(b));
                self.wr_gr(d, v, nat2(self, a, b));
            }
            Cmp { rel, pt, pf, a, b } => {
                if nat2(self, a, b) {
                    self.wr_pr(pt, false);
                    self.wr_pr(pf, false);
                } else {
                    let r = rel.eval(self.rd_gr(a), self.rd_gr(b));
                    self.wr_pr(pt, r);
                    self.wr_pr(pf, !r);
                }
            }
            CmpImm {
                rel,
                pt,
                pf,
                imm,
                b,
            } => {
                if self.gr_nat_of(b) {
                    self.wr_pr(pt, false);
                    self.wr_pr(pf, false);
                } else {
                    let r = rel.eval(imm as u64, self.rd_gr(b));
                    self.wr_pr(pt, r);
                    self.wr_pr(pf, !r);
                }
            }
            Tbit { pt, pf, r, pos } => {
                if self.gr_nat_of(r) {
                    self.wr_pr(pt, false);
                    self.wr_pr(pf, false);
                } else {
                    let bit = (self.rd_gr(r) >> pos) & 1 != 0;
                    self.wr_pr(pt, bit);
                    self.wr_pr(pf, !bit);
                }
            }
            Padd { sz, d, a, b } => {
                let v = lanewise(self.rd_gr(a), self.rd_gr(b), sz, |x, y| x.wrapping_add(y));
                self.wr_gr(d, v, nat2(self, a, b));
            }
            Psub { sz, d, a, b } => {
                let v = lanewise(self.rd_gr(a), self.rd_gr(b), sz, |x, y| x.wrapping_sub(y));
                self.wr_gr(d, v, nat2(self, a, b));
            }
            Pmpy2 { d, a, b } => {
                let v = lanewise(self.rd_gr(a), self.rd_gr(b), 2, |x, y| {
                    ((x as u16 as i16 as i32).wrapping_mul(y as u16 as i16 as i32)) as u32
                });
                self.wr_gr(d, v, nat2(self, a, b));
            }
            ShlImm { d, a, count } => {
                let v = if count >= 64 {
                    0
                } else {
                    self.rd_gr(a) << count
                };
                self.wr_gr(d, v, self.gr_nat_of(a));
            }
            ShlVar { d, a, c } => {
                let cnt = self.rd_gr(c);
                let v = if cnt >= 64 { 0 } else { self.rd_gr(a) << cnt };
                self.wr_gr(d, v, nat2(self, a, c));
            }
            ShrImm {
                d,
                a,
                count,
                signed,
            } => {
                let v = shr64(self.rd_gr(a), count as u64, signed);
                self.wr_gr(d, v, self.gr_nat_of(a));
            }
            ShrVar { d, a, c, signed } => {
                let v = shr64(self.rd_gr(a), self.rd_gr(c), signed);
                self.wr_gr(d, v, nat2(self, a, c));
            }
            Extr {
                d,
                a,
                pos,
                len,
                signed,
            } => {
                let raw = self.rd_gr(a) >> pos;
                let v = if len >= 64 {
                    raw
                } else if signed {
                    let shift = 64 - len;
                    (((raw << shift) as i64) >> shift) as u64
                } else {
                    raw & ((1u64 << len) - 1)
                };
                self.wr_gr(d, v, self.gr_nat_of(a));
            }
            Dep {
                d,
                src,
                target,
                pos,
                len,
            } => {
                let mask = if len >= 64 {
                    u64::MAX
                } else {
                    (1u64 << len) - 1
                };
                let v = (self.rd_gr(target) & !(mask << pos)) | ((self.rd_gr(src) & mask) << pos);
                self.wr_gr(d, v, nat2(self, src, target));
            }
            DepZ { d, src, pos, len } => {
                let mask = if len >= 64 {
                    u64::MAX
                } else {
                    (1u64 << len) - 1
                };
                let v = (self.rd_gr(src) & mask) << pos;
                self.wr_gr(d, v, self.gr_nat_of(src));
            }
            Sxt { d, a, size } => {
                let v = self.rd_gr(a);
                let v = match size {
                    1 => v as u8 as i8 as i64 as u64,
                    2 => v as u16 as i16 as i64 as u64,
                    _ => v as u32 as i32 as i64 as u64,
                };
                self.wr_gr(d, v, self.gr_nat_of(a));
            }
            Zxt { d, a, size } => {
                let v = self.rd_gr(a);
                let v = match size {
                    1 => v as u8 as u64,
                    2 => v as u16 as u64,
                    _ => v as u32 as u64,
                };
                self.wr_gr(d, v, self.gr_nat_of(a));
            }
            Popcnt { d, a } => {
                let v = self.rd_gr(a).count_ones() as u64;
                self.wr_gr(d, v, self.gr_nat_of(a));
            }
            MovToBr { b, r } => {
                if self.gr_nat_of(r) {
                    return Err(MachFault::NatConsumption);
                }
                self.br[b.phys()] = self.rd_gr(r);
            }
            MovFromBr { d, b } => {
                let v = self.br[b.phys()];
                self.wr_gr(d, v, false);
            }
            MovFromIp { d } => self.wr_gr(d, self.ip, false),
            Movl { d, imm } => self.wr_gr(d, imm, false),
            Ld { sz, d, addr, spec } => {
                if self.gr_nat_of(addr) {
                    if spec {
                        self.wr_gr(d, 0, true);
                        return Ok(None);
                    }
                    return Err(MachFault::NatConsumption);
                }
                let a = self.rd_gr(addr);
                match self.mem_read(bus, a, sz, spec)? {
                    Some(v) => self.wr_gr(d, v, false),
                    None => self.wr_gr(d, 0, true),
                }
            }
            St { sz, addr, val } => {
                if self.gr_nat_of(addr) || self.gr_nat_of(val) {
                    return Err(MachFault::NatConsumption);
                }
                let a = self.rd_gr(addr);
                let v = self.rd_gr(val);
                let v = if sz == 8 {
                    v
                } else {
                    v & ((1u64 << (sz as u32 * 8)) - 1)
                };
                self.mem_write(bus, a, sz, v)?;
            }
            ChkS { r, target } => {
                if self.gr_nat_of(r) {
                    return Ok(Some(resolve(target, &self.br)));
                }
            }
            Ldf { fmt, f, addr, spec } => {
                if self.gr_nat_of(addr) {
                    if spec {
                        self.wr_fr(f, 0, true);
                        return Ok(None);
                    }
                    return Err(MachFault::NatConsumption);
                }
                let a = self.rd_gr(addr);
                let read = self.mem_read(bus, a, fmt.bytes() as u8, spec)?;
                match read {
                    Some(raw) => {
                        let bits = match fmt {
                            FFmt::S => (f32::from_bits(raw as u32) as f64).to_bits(),
                            FFmt::D | FFmt::Raw => raw,
                        };
                        self.wr_fr(f, bits, false);
                    }
                    None => self.wr_fr(f, 0, true),
                }
            }
            Stf { fmt, f, addr } => {
                if self.gr_nat_of(addr) || self.fr_nat[f.phys()] {
                    return Err(MachFault::NatConsumption);
                }
                let a = self.rd_gr(addr);
                let raw = self.rd_fr_raw(f);
                match fmt {
                    FFmt::S => {
                        let bits = (f64::from_bits(raw) as f32).to_bits() as u64;
                        self.mem_write(bus, a, 4, bits)?;
                    }
                    FFmt::D | FFmt::Raw => self.mem_write(bus, a, 8, raw)?,
                }
            }
            Setf { kind, f, r } => {
                if self.gr_nat_of(r) {
                    return Err(MachFault::NatConsumption);
                }
                let v = self.rd_gr(r);
                let bits = match kind {
                    FXfer::Sig | FXfer::D => v,
                    FXfer::S => (f32::from_bits(v as u32) as f64).to_bits(),
                };
                self.wr_fr(f, bits, false);
            }
            Getf { kind, d, f } => {
                if self.fr_nat[f.phys()] {
                    return Err(MachFault::NatConsumption);
                }
                let raw = self.rd_fr_raw(f);
                let v = match kind {
                    FXfer::Sig | FXfer::D => raw,
                    FXfer::S => (f64::from_bits(raw) as f32).to_bits() as u64,
                };
                self.wr_gr(d, v, false);
            }
            Mf => {}
            Fma { d, a, b, c } => {
                // `fma d = a, b, f0` is the `fmpy` pseudo-op: a pure
                // multiply (adding +0 would destroy a -0 product).
                let v = if c.phys() == 0 {
                    self.rd_fr_f64(a) * self.rd_fr_f64(b)
                } else {
                    self.rd_fr_f64(a)
                        .mul_add(self.rd_fr_f64(b), self.rd_fr_f64(c))
                };
                self.wr_fr(d, v.to_bits(), false);
            }
            Fms { d, a, b, c } => {
                let v = self
                    .rd_fr_f64(a)
                    .mul_add(self.rd_fr_f64(b), -self.rd_fr_f64(c));
                self.wr_fr(d, v.to_bits(), false);
            }
            Fnma { d, a, b, c } => {
                let v = (-self.rd_fr_f64(a)).mul_add(self.rd_fr_f64(b), self.rd_fr_f64(c));
                self.wr_fr(d, v.to_bits(), false);
            }
            Fmin { d, a, b } => {
                let (x, y) = (self.rd_fr_f64(a), self.rd_fr_f64(b));
                let v = if x < y { x } else { y };
                self.wr_fr(d, v.to_bits(), false);
            }
            Fmax { d, a, b } => {
                let (x, y) = (self.rd_fr_f64(a), self.rd_fr_f64(b));
                let v = if x > y { x } else { y };
                self.wr_fr(d, v.to_bits(), false);
            }
            Fcmp { rel, pt, pf, a, b } => {
                let r = rel.eval(self.rd_fr_f64(a), self.rd_fr_f64(b));
                self.wr_pr(pt, r);
                self.wr_pr(pf, !r);
            }
            FcvtFx { d, a, trunc } => {
                let v = self.rd_fr_f64(a);
                let i: i64 =
                    if v.is_nan() || !(-9.223372036854776e18..9.223372036854776e18).contains(&v) {
                        i64::MIN
                    } else if trunc {
                        v as i64
                    } else {
                        v.round_ties_even() as i64
                    };
                self.wr_fr(d, i as u64, false);
            }
            FcvtXf { d, a } => {
                let v = self.rd_fr_raw(a) as i64 as f64;
                self.wr_fr(d, v.to_bits(), false);
            }
            FmergeS { d, a, b } => {
                let v = (self.rd_fr_raw(a) & SIGN) | (self.rd_fr_raw(b) & !SIGN);
                self.wr_fr(d, v, false);
            }
            FmergeNs { d, a, b } => {
                let v = ((self.rd_fr_raw(a) ^ SIGN) & SIGN) | (self.rd_fr_raw(b) & !SIGN);
                self.wr_fr(d, v, false);
            }
            Frcpa { d, p, a, b } => {
                let (x, y) = (self.rd_fr_f64(a), self.rd_fr_f64(b));
                if x.is_nan()
                    || y.is_nan()
                    || x.is_infinite()
                    || y.is_infinite()
                    || x == 0.0
                    || y == 0.0
                {
                    // Special operands: deliver the IEEE quotient, clear p.
                    self.wr_fr(d, (x / y).to_bits(), false);
                    self.wr_pr(p, false);
                } else {
                    let approx = trunc_mantissa((1.0 / y).to_bits(), 40);
                    self.wr_fr(d, approx, false);
                    self.wr_pr(p, true);
                }
            }
            Frsqrta { d, p, a } => {
                let x = self.rd_fr_f64(a);
                if x.is_nan() || x <= 0.0 || x.is_infinite() {
                    self.wr_fr(d, x.sqrt().to_bits(), false);
                    self.wr_pr(p, false);
                } else {
                    let approx = trunc_mantissa((1.0 / x.sqrt()).to_bits(), 40);
                    self.wr_fr(d, approx, false);
                    self.wr_pr(p, true);
                }
            }
            Fsqrt { d, a } => {
                let v = self.rd_fr_f64(a).sqrt();
                self.wr_fr(d, v.to_bits(), false);
            }
            FnormS { d, a } => {
                let v = self.rd_fr_f64(a) as f32 as f64;
                self.wr_fr(d, v.to_bits(), false);
            }
            Fpma { d, a, b, c } => {
                let (a0, a1) = self.rd_fr_packed(a);
                let (b0, b1) = self.rd_fr_packed(b);
                let (lo, hi) = if c.phys() == 0 {
                    // `fpmpy` pseudo-op (see `Fma`).
                    ((a0 * b0).to_bits() as u64, (a1 * b1).to_bits() as u64)
                } else {
                    let (c0, c1) = self.rd_fr_packed(c);
                    (
                        a0.mul_add(b0, c0).to_bits() as u64,
                        a1.mul_add(b1, c1).to_bits() as u64,
                    )
                };
                self.wr_fr(d, lo | (hi << 32), false);
            }
            Fpms { d, a, b, c } => {
                let (a0, a1) = self.rd_fr_packed(a);
                let (b0, b1) = self.rd_fr_packed(b);
                let (c0, c1) = self.rd_fr_packed(c);
                let lo = a0.mul_add(b0, -c0).to_bits() as u64;
                let hi = a1.mul_add(b1, -c1).to_bits() as u64;
                self.wr_fr(d, lo | (hi << 32), false);
            }
            Fpmin { d, a, b } => {
                let (a0, a1) = self.rd_fr_packed(a);
                let (b0, b1) = self.rd_fr_packed(b);
                let lo = (if a0 < b0 { a0 } else { b0 }).to_bits() as u64;
                let hi = (if a1 < b1 { a1 } else { b1 }).to_bits() as u64;
                self.wr_fr(d, lo | (hi << 32), false);
            }
            Fpmax { d, a, b } => {
                let (a0, a1) = self.rd_fr_packed(a);
                let (b0, b1) = self.rd_fr_packed(b);
                let lo = (if a0 > b0 { a0 } else { b0 }).to_bits() as u64;
                let hi = (if a1 > b1 { a1 } else { b1 }).to_bits() as u64;
                self.wr_fr(d, lo | (hi << 32), false);
            }
            Fpdiv { d, a, b } => {
                let (a0, a1) = self.rd_fr_packed(a);
                let (b0, b1) = self.rd_fr_packed(b);
                let lo = (a0 / b0).to_bits() as u64;
                let hi = (a1 / b1).to_bits() as u64;
                self.wr_fr(d, lo | (hi << 32), false);
            }
            Xma { d, a, b, c, high } => {
                let (x, y, z) = (
                    self.rd_fr_raw(a) as u128,
                    self.rd_fr_raw(b) as u128,
                    self.rd_fr_raw(c) as u128,
                );
                let p = x.wrapping_mul(y).wrapping_add(z);
                let v = if high { (p >> 64) as u64 } else { p as u64 };
                self.wr_fr(d, v, false);
            }
            Br { target } => return Ok(Some(resolve(target, &self.br))),
            BrCall { b_save, target } => {
                let ret = self.ip + Bundle::SIZE;
                let t = resolve(target, &self.br);
                self.br[b_save.phys()] = ret;
                return Ok(Some(t));
            }
            BrRet { b } => return Ok(Some(self.br[b.phys()])),
            Nop { .. } => {}
        }
        Ok(None)
    }
}

const SIGN: u64 = 1 << 63;

fn resolve(t: Target, br: &[u64; NUM_BR as usize]) -> u64 {
    match t {
        Target::Abs(a) => a,
        Target::Reg(b) => br[b.phys()],
        Target::Label(l) => panic!("unpatched label L{l} reached execution"),
    }
}

fn shr64(v: u64, count: u64, signed: bool) -> u64 {
    if count >= 64 {
        if signed && (v as i64) < 0 {
            u64::MAX
        } else {
            0
        }
    } else if signed {
        ((v as i64) >> count) as u64
    } else {
        v >> count
    }
}

fn lanewise(a: u64, b: u64, lane_bytes: u8, f: impl Fn(u32, u32) -> u32) -> u64 {
    let bits = lane_bytes as u32 * 8;
    let lanes = 64 / bits;
    let mask = if bits == 32 {
        u32::MAX as u64
    } else {
        (1u64 << bits) - 1
    };
    let mut out = 0u64;
    for i in 0..lanes {
        let sh = i * bits;
        let x = ((a >> sh) & mask) as u32;
        let y = ((b >> sh) & mask) as u32;
        out |= ((f(x, y) as u64) & mask) << sh;
    }
    out
}

/// Clears the low `bits` mantissa bits of an `f64` bit pattern
/// (simulates the limited precision of `frcpa`/`frsqrta` deterministically).
fn trunc_mantissa(bits: u64, low_bits: u32) -> u64 {
    bits & !((1u64 << low_bits) - 1)
}

/// A trivial in-memory [`Bus`] for unit tests.
#[derive(Debug, Default)]
pub struct VecBus {
    /// Backing storage (address 0-based).
    pub data: Vec<u8>,
}

impl VecBus {
    /// A bus with `size` zero bytes.
    pub fn new(size: usize) -> VecBus {
        VecBus {
            data: vec![0; size],
        }
    }
}

impl Bus for VecBus {
    fn read(&mut self, addr: u64, size: u32) -> Result<u64, BusError> {
        let mut v = 0u64;
        for i in 0..size as u64 {
            let b = *self
                .data
                .get((addr + i) as usize)
                .ok_or(BusError::Unmapped)?;
            v |= (b as u64) << (i * 8);
        }
        Ok(v)
    }

    fn write(&mut self, addr: u64, size: u32, val: u64) -> Result<(), BusError> {
        for i in 0..size as u64 {
            let slot = self
                .data
                .get_mut((addr + i) as usize)
                .ok_or(BusError::Unmapped)?;
            *slot = (val >> (i * 8)) as u8;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::CodeBuilder;
    use crate::inst::CmpRel;
    use crate::regs::*;

    const BASE: u64 = 0x10000;

    fn build(f: impl FnOnce(&mut CodeBuilder)) -> Machine {
        let mut cb = CodeBuilder::new();
        f(&mut cb);
        // Exit by branching to an external address.
        cb.push(Op::Br {
            target: Target::Abs(0xDEAD0000),
        });
        let (bundles, _) = cb.assemble(BASE);
        let mut arena = CodeArena::new(BASE);
        arena.append(bundles, 0);
        let mut m = Machine::new(arena, Timing::default());
        m.set_ip(BASE, 0);
        m
    }

    fn run(m: &mut Machine) -> StopReason {
        let mut bus = VecBus::new(0x1000);
        m.run(&mut bus, 100_000)
    }

    #[test]
    fn alu_and_movl() {
        let mut m = build(|cb| {
            cb.push(Op::Movl {
                d: Gr(32),
                imm: 0x1234_5678_9ABC_DEF0,
            });
            cb.stop();
            cb.push(Op::AddImm {
                d: Gr(33),
                imm: 0x10,
                a: Gr(32),
            });
            cb.stop();
            cb.push(Op::Sub {
                d: Gr(34),
                a: Gr(33),
                b: Gr(32),
            });
            cb.stop();
        });
        let r = run(&mut m);
        assert!(matches!(
            r,
            StopReason::ExternalBranch {
                target: 0xDEAD0000,
                ..
            }
        ));
        assert_eq!(m.gr[32], 0x1234_5678_9ABC_DEF0);
        assert_eq!(m.gr[33], 0x1234_5678_9ABC_DF00);
        assert_eq!(m.gr[34], 0x10);
    }

    #[test]
    fn r0_reads_zero_writes_ignored() {
        let mut m = build(|cb| {
            cb.push(Op::AddImm {
                d: Gr(0),
                imm: 99,
                a: R0,
            });
            cb.stop();
            cb.push(Op::Add {
                d: Gr(32),
                a: R0,
                b: R0,
            });
            cb.stop();
        });
        run(&mut m);
        assert_eq!(m.gr[0], 0);
        assert_eq!(m.gr[32], 0);
    }

    #[test]
    fn predication_gates_execution() {
        let mut m = build(|cb| {
            cb.push(Op::CmpImm {
                rel: CmpRel::Eq,
                pt: Pr(1),
                pf: Pr(2),
                imm: 0,
                b: R0,
            });
            cb.stop();
            cb.push_pred(
                Pr(1),
                Op::AddImm {
                    d: Gr(32),
                    imm: 11,
                    a: R0,
                },
            );
            cb.push_pred(
                Pr(2),
                Op::AddImm {
                    d: Gr(33),
                    imm: 22,
                    a: R0,
                },
            );
            cb.stop();
        });
        run(&mut m);
        assert_eq!(m.gr[32], 11, "true-predicated executed");
        assert_eq!(m.gr[33], 0, "false-predicated skipped");
    }

    #[test]
    fn memory_and_misalignment() {
        let mut m = build(|cb| {
            cb.push(Op::AddImm {
                d: Gr(32),
                imm: 0x100,
                a: R0,
            });
            cb.stop();
            cb.push(Op::Movl {
                d: Gr(33),
                imm: 0xAABBCCDD,
            });
            cb.stop();
            cb.push(Op::St {
                sz: 4,
                addr: Gr(32),
                val: Gr(33),
            });
            cb.stop();
            cb.push(Op::Ld {
                sz: 4,
                d: Gr(34),
                addr: Gr(32),
                spec: false,
            });
            cb.stop();
            // Misaligned access: 0x101.
            cb.push(Op::AddImm {
                d: Gr(35),
                imm: 0x101,
                a: R0,
            });
            cb.stop();
            cb.push(Op::Ld {
                sz: 4,
                d: Gr(36),
                addr: Gr(35),
                spec: false,
            });
            cb.stop();
        });
        let r = run(&mut m);
        assert_eq!(m.gr[34], 0xAABBCCDD);
        match r {
            StopReason::Fault {
                fault: MachFault::Misalign { addr, size, write },
                ..
            } => {
                assert_eq!(addr, 0x101);
                assert_eq!(size, 4);
                assert!(!write);
            }
            other => panic!("expected misalign fault, got {other:?}"),
        }
    }

    #[test]
    fn speculative_load_defers_and_chk_branches() {
        let mut m = build(|cb| {
            // ld.s from unmapped address -> NaT, then chk.s branches to
            // recovery, which sets r40 = 7.
            let recovery = cb.label();
            let done = cb.label();
            cb.push(Op::Movl {
                d: Gr(32),
                imm: 0xFFFF_0000,
            });
            cb.stop();
            cb.push(Op::Ld {
                sz: 8,
                d: Gr(33),
                addr: Gr(32),
                spec: true,
            });
            cb.stop();
            cb.push(Op::ChkS {
                r: Gr(33),
                target: Target::Label(recovery.0),
            });
            cb.push(Op::Br {
                target: Target::Label(done.0),
            });
            cb.bind(recovery);
            cb.push(Op::AddImm {
                d: Gr(40),
                imm: 7,
                a: R0,
            });
            cb.stop();
            cb.bind(done);
        });
        run(&mut m);
        assert!(m.gr_nat[33], "speculative load set NaT");
        assert_eq!(m.gr[40], 7, "recovery code ran");
    }

    #[test]
    fn fp_basics() {
        let mut m = build(|cb| {
            // f32 = 2.0 * 3.0 + 1.0 via fma.
            cb.push(Op::Movl {
                d: Gr(32),
                imm: 2.0f64.to_bits(),
            });
            cb.push(Op::Movl {
                d: Gr(33),
                imm: 3.0f64.to_bits(),
            });
            cb.stop();
            cb.push(Op::Setf {
                kind: FXfer::D,
                f: Fr(32),
                r: Gr(32),
            });
            cb.push(Op::Setf {
                kind: FXfer::D,
                f: Fr(33),
                r: Gr(33),
            });
            cb.stop();
            cb.push(Op::Fma {
                d: Fr(34),
                a: Fr(32),
                b: Fr(33),
                c: F1,
            });
            cb.stop();
            cb.push(Op::Getf {
                kind: FXfer::D,
                d: Gr(34),
                f: Fr(34),
            });
            cb.stop();
        });
        run(&mut m);
        assert_eq!(f64::from_bits(m.gr[34]), 7.0);
    }

    #[test]
    fn frcpa_division_sequence_is_exact() {
        // The full Newton-Raphson + Markstein correction sequence the
        // FDIV template emits must produce exactly a/b.
        let cases: &[(f64, f64)] = &[
            (1.0, 3.0),
            (2.0, 7.0),
            (-5.5, 1.25),
            (1e300, 3.7),
            (1.0, 0.1),
            (123456789.0, 0.000987654321),
            (6.0, 3.0),
            (f64::MIN_POSITIVE, 3.0),
        ];
        for &(a, b) in cases {
            let mut m = build(|cb| {
                cb.push(Op::Movl {
                    d: Gr(32),
                    imm: a.to_bits(),
                });
                cb.push(Op::Movl {
                    d: Gr(33),
                    imm: b.to_bits(),
                });
                cb.stop();
                cb.push(Op::Setf {
                    kind: FXfer::D,
                    f: Fr(32),
                    r: Gr(32),
                });
                cb.push(Op::Setf {
                    kind: FXfer::D,
                    f: Fr(33),
                    r: Gr(33),
                });
                cb.stop();
                emit_fdiv(cb, Fr(40), Fr(32), Fr(33), Pr(1), Fr(41), Fr(42));
                cb.push(Op::Getf {
                    kind: FXfer::D,
                    d: Gr(40),
                    f: Fr(40),
                });
                cb.stop();
            });
            run(&mut m);
            assert_eq!(
                f64::from_bits(m.gr[40]),
                a / b,
                "frcpa sequence mismatch for {a} / {b}"
            );
        }
    }

    /// Reference FDIV sequence used by the translator templates (tested
    /// here against IEEE division).
    pub fn emit_fdiv(cb: &mut CodeBuilder, d: Fr, a: Fr, b: Fr, p: Pr, t1: Fr, t2: Fr) {
        use crate::inst::Op::*;
        // d = approx 1/b (or the final special result, with p cleared).
        cb.push(Frcpa { d, p, a, b });
        cb.stop();
        // Three NR iterations: y <- y + y*(1 - b*y).
        for _ in 0..3 {
            cb.push_pred(
                p,
                Fnma {
                    d: t1,
                    a: b,
                    b: d,
                    c: F1,
                },
            );
            cb.stop();
            cb.push_pred(
                p,
                Fma {
                    d,
                    a: d,
                    b: t1,
                    c: d,
                },
            );
            cb.stop();
        }
        // q0 = a*y; r = a - b*q0; q = q0 + r*y (Markstein correction).
        cb.push_pred(
            p,
            Fma {
                d: t2,
                a,
                b: d,
                c: F0,
            },
        );
        cb.stop();
        cb.push_pred(
            p,
            Fnma {
                d: t1,
                a: b,
                b: t2,
                c: a,
            },
        );
        cb.stop();
        cb.push_pred(
            p,
            Fma {
                d,
                a: t1,
                b: d,
                c: t2,
            },
        );
        cb.stop();
    }

    #[test]
    fn frcpa_special_cases() {
        for (a, b) in [(1.0f64, 0.0f64), (0.0, 5.0), (f64::INFINITY, 2.0)] {
            let mut m = build(|cb| {
                cb.push(Op::Movl {
                    d: Gr(32),
                    imm: a.to_bits(),
                });
                cb.push(Op::Movl {
                    d: Gr(33),
                    imm: b.to_bits(),
                });
                cb.stop();
                cb.push(Op::Setf {
                    kind: FXfer::D,
                    f: Fr(32),
                    r: Gr(32),
                });
                cb.push(Op::Setf {
                    kind: FXfer::D,
                    f: Fr(33),
                    r: Gr(33),
                });
                cb.stop();
                tests::emit_fdiv(cb, Fr(40), Fr(32), Fr(33), Pr(1), Fr(41), Fr(42));
                cb.push(Op::Getf {
                    kind: FXfer::D,
                    d: Gr(40),
                    f: Fr(40),
                });
                cb.stop();
            });
            run(&mut m);
            let got = f64::from_bits(m.gr[40]);
            let want = a / b;
            assert!(
                got == want || (got.is_nan() && want.is_nan()),
                "special case {a}/{b}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn packed_fp_lanes() {
        let lo = 1.5f32.to_bits() as u64;
        let hi = (2.5f32.to_bits() as u64) << 32;
        let mut m = build(|cb| {
            cb.push(Op::Movl {
                d: Gr(32),
                imm: lo | hi,
            });
            cb.stop();
            cb.push(Op::Setf {
                kind: FXfer::Sig,
                f: Fr(32),
                r: Gr(32),
            });
            cb.stop();
            // Packed add with itself: fpma d = a, f1, a.
            cb.push(Op::Fpma {
                d: Fr(33),
                a: Fr(32),
                b: F1,
                c: Fr(32),
            });
            cb.stop();
            cb.push(Op::Getf {
                kind: FXfer::Sig,
                d: Gr(33),
                f: Fr(33),
            });
            cb.stop();
        });
        run(&mut m);
        let raw = m.gr[33];
        assert_eq!(f32::from_bits(raw as u32), 3.0);
        assert_eq!(f32::from_bits((raw >> 32) as u32), 5.0);
    }

    #[test]
    fn xma_integer_multiply() {
        let mut m = build(|cb| {
            cb.push(Op::Movl {
                d: Gr(32),
                imm: 0xFFFF_FFFF,
            });
            cb.push(Op::Movl {
                d: Gr(33),
                imm: 0x1_0001,
            });
            cb.stop();
            cb.push(Op::Setf {
                kind: FXfer::Sig,
                f: Fr(32),
                r: Gr(32),
            });
            cb.push(Op::Setf {
                kind: FXfer::Sig,
                f: Fr(33),
                r: Gr(33),
            });
            cb.stop();
            cb.push(Op::Xma {
                d: Fr(34),
                a: Fr(32),
                b: Fr(33),
                c: F0,
                high: false,
            });
            cb.stop();
            cb.push(Op::Getf {
                kind: FXfer::Sig,
                d: Gr(34),
                f: Fr(34),
            });
            cb.stop();
        });
        run(&mut m);
        assert_eq!(m.gr[34], 0xFFFF_FFFFu64 * 0x1_0001);
    }

    #[test]
    fn call_and_return() {
        let mut m = build(|cb| {
            let func = cb.label();
            let after = cb.label();
            cb.push(Op::BrCall {
                b_save: Br(1),
                target: Target::Label(func.0),
            });
            cb.bind(after);
            cb.push(Op::AddImm {
                d: Gr(33),
                imm: 1,
                a: Gr(32),
            });
            cb.stop();
            let done = cb.label();
            cb.push(Op::Br {
                target: Target::Label(done.0),
            });
            cb.bind(func);
            cb.push(Op::AddImm {
                d: Gr(32),
                imm: 41,
                a: R0,
            });
            cb.stop();
            cb.push(Op::BrRet { b: Br(1) });
            cb.bind(done);
        });
        run(&mut m);
        assert_eq!(m.gr[33], 42);
    }

    #[test]
    fn cycles_accumulate_with_stalls() {
        // A dependent load-use chain must cost more than independent adds.
        let mut dependent = build(|cb| {
            cb.push(Op::AddImm {
                d: Gr(32),
                imm: 0x100,
                a: R0,
            });
            cb.stop();
            for _ in 0..10 {
                cb.push(Op::Ld {
                    sz: 8,
                    d: Gr(33),
                    addr: Gr(32),
                    spec: false,
                });
                cb.stop();
                cb.push(Op::AddImm {
                    d: Gr(34),
                    imm: 1,
                    a: Gr(33),
                });
                cb.stop();
            }
        });
        run(&mut dependent);
        let dep_cycles = dependent.cycles;

        let mut independent = build(|cb| {
            for i in 0..20u16 {
                cb.push(Op::AddImm {
                    d: Gr(32 + (i % 8)),
                    imm: 1,
                    a: R0,
                });
            }
            cb.stop();
        });
        run(&mut independent);
        assert!(
            dep_cycles > independent.cycles * 2,
            "dep {dep_cycles} vs indep {}",
            independent.cycles
        );
    }

    #[test]
    fn region_cycle_attribution() {
        let mut cb1 = CodeBuilder::new();
        for _ in 0..30 {
            cb1.push(Op::AddImm {
                d: Gr(32),
                imm: 1,
                a: Gr(32),
            });
            cb1.stop();
        }
        cb1.push(Op::Br {
            target: Target::Abs(0xDEAD0000),
        });
        let (b1, _) = cb1.assemble(BASE);
        let mut arena = CodeArena::new(BASE);
        arena.append(b1, 7);
        let mut m = Machine::new(arena, Timing::default());
        m.set_ip(BASE, 0);
        let mut bus = VecBus::new(16);
        m.run(&mut bus, 10_000);
        assert!(*m.region_cycles.get(&7).unwrap() >= 30);
        assert_eq!(m.gr[32], 30);
    }

    #[test]
    fn patch_slot_redirects_branch() {
        let mut cb = CodeBuilder::new();
        cb.push(Op::Br {
            target: Target::Abs(0xAAA0000),
        });
        let (bundles, _) = cb.assemble(BASE);
        let mut arena = CodeArena::new(BASE);
        arena.append(bundles, 0);
        // Find the branch slot.
        let slot = arena
            .bundle_at(BASE)
            .unwrap()
            .slots
            .iter()
            .position(|s| s.op.is_branch())
            .unwrap();
        arena.patch_slot(
            BASE,
            slot,
            Op::Br {
                target: Target::Abs(0xBBB0000),
            },
        );
        let mut m = Machine::new(arena, Timing::default());
        m.set_ip(BASE, 0);
        let mut bus = VecBus::new(16);
        let r = m.run(&mut bus, 100);
        assert!(matches!(
            r,
            StopReason::ExternalBranch {
                target: 0xBBB0000,
                ..
            }
        ));
    }

    #[test]
    fn inst_limit_stops() {
        let mut cb = CodeBuilder::new();
        let top = cb.label();
        cb.bind(top);
        cb.push(Op::AddImm {
            d: Gr(32),
            imm: 1,
            a: Gr(32),
        });
        cb.stop();
        cb.push(Op::Br {
            target: Target::Label(top.0),
        });
        let (bundles, _) = cb.assemble(BASE);
        let mut arena = CodeArena::new(BASE);
        arena.append(bundles, 0);
        let mut m = Machine::new(arena, Timing::default());
        m.set_ip(BASE, 0);
        let mut bus = VecBus::new(16);
        assert_eq!(m.run(&mut bus, 1000), StopReason::InstLimit);
    }
}
