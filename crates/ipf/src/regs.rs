//! Itanium register identifiers.
//!
//! Register numbers are `u16` so that numbers ≥ [`VIRT_BASE`] can be used
//! as *virtual* registers by the translator's IL before register
//! allocation; the machine only accepts physical numbers.
//!
//! Note on the register stack: IA-32 EL "allocates the entire 96-register
//! stack and operates in the same frame" (paper §2 fn. 4), so we model
//! a flat file of 128 general registers with no register stack engine.

use std::fmt;

/// First virtual register number (anything ≥ this is pre-allocation IL).
pub const VIRT_BASE: u16 = 256;

/// Number of physical general registers.
pub const NUM_GR: u16 = 128;
/// Number of physical floating-point registers.
pub const NUM_FR: u16 = 128;
/// Number of physical predicate registers.
pub const NUM_PR: u16 = 64;
/// Number of branch registers.
pub const NUM_BR: u8 = 8;

macro_rules! reg_type {
    ($(#[$doc:meta])* $name:ident, $count:expr, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub struct $name(pub u16);

        impl $name {
            /// True if this is a virtual (pre-allocation) register.
            pub fn is_virtual(self) -> bool {
                self.0 >= VIRT_BASE
            }

            /// The register number.
            ///
            /// # Panics
            ///
            /// Panics if the register is virtual (must be allocated
            /// before reaching the machine).
            pub fn phys(self) -> usize {
                assert!(
                    self.0 < $count,
                    concat!("virtual ", $prefix, "{} reached the machine"),
                    self.0
                );
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.is_virtual() {
                    write!(f, concat!("v", $prefix, "{}"), self.0 - VIRT_BASE)
                } else {
                    write!(f, concat!($prefix, "{}"), self.0)
                }
            }
        }
    };
}

reg_type!(
    /// A general (integer) register `r0`-`r127`; `r0` reads as zero.
    Gr,
    NUM_GR,
    "r"
);
reg_type!(
    /// A floating-point register `f0`-`f127`; `f0` = +0.0, `f1` = +1.0.
    Fr,
    NUM_FR,
    "f"
);
reg_type!(
    /// A predicate register `p0`-`p63`; `p0` always reads true.
    Pr,
    NUM_PR,
    "p"
);

/// A branch register `b0`-`b7`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Br(pub u8);

impl Br {
    /// The register number.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn phys(self) -> usize {
        assert!(self.0 < NUM_BR, "branch register out of range");
        self.0 as usize
    }
}

impl fmt::Display for Br {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// The always-zero general register.
pub const R0: Gr = Gr(0);
/// The always-+0.0 FP register.
pub const F0: Fr = Fr(0);
/// The always-+1.0 FP register.
pub const F1: Fr = Fr(1);
/// The always-true predicate.
pub const P0: Pr = Pr(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_and_virtual() {
        assert_eq!(Gr(5).phys(), 5);
        assert!(!Gr(127).is_virtual());
        assert!(Gr(VIRT_BASE).is_virtual());
        assert_eq!(Gr(VIRT_BASE + 3).to_string(), "vr3");
        assert_eq!(Fr(2).to_string(), "f2");
        assert_eq!(Pr(6).to_string(), "p6");
        assert_eq!(Br(1).to_string(), "b1");
    }

    #[test]
    #[should_panic(expected = "reached the machine")]
    fn virtual_phys_panics() {
        Gr(VIRT_BASE).phys();
    }
}
