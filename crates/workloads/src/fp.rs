//! FP/SIMD kernels: the CPU2000-FP-like composite of Figure 8 plus MMX.

use crate::int::{ngr, npr, shared_native_loop};
use crate::{prng_bytes, Workload, DATA, RESULT};
use ia32::asm::Asm;
use ia32::inst::*;
use ia32::regs::*;
use ia32::Cond;
use ipf::asm::CodeBuilder;
use ipf::inst::{FFmt, Op};
use ipf::regs::{Fr, F0, F1};

/// Arrays of doubles at DATA (x) and DATA+0x8000 (y); floats at
/// DATA+0x10000 (a) and DATA+0x18000 (b).
fn fp_data() -> Vec<(u32, Vec<u8>)> {
    let mut x = Vec::new();
    let mut y = Vec::new();
    let raw = prng_bytes(99, 4096);
    for &r in raw.iter().take(1024) {
        let v = (r as f64 - 128.0) / 16.0;
        x.extend_from_slice(&v.to_bits().to_le_bytes());
        y.extend_from_slice(&(v * 0.5 + 1.0).to_bits().to_le_bytes());
    }
    let mut fa = Vec::new();
    let mut fb = Vec::new();
    for i in 0..2048usize {
        let v = (raw[i % 4096] as f32 - 100.0) / 8.0;
        fa.extend_from_slice(&v.to_bits().to_le_bytes());
        fb.extend_from_slice(&(v * 0.25 + 2.0f32).to_bits().to_le_bytes());
    }
    vec![
        (DATA, x),
        (DATA + 0x8000, y),
        (DATA + 0x1_0000, fa),
        (DATA + 0x1_8000, fb),
    ]
}

/// daxpy: `y[i] += a * x[i]` with the x87 stack.
fn daxpy_ia32(a: &mut Asm, iters: u32) {
    a.mov_ri(ECX, iters as i32);
    a.mov_ri(EAX, 0); // i
    let top = a.label();
    a.bind(top);
    a.mov_rr(EBX, EAX);
    a.alu_ri(AluOp::And, EBX, 1023);
    a.shift_i(ShiftOp::Shl, EBX, 3);
    a.inst(Inst::Fld {
        src: FpOperand::M64(Addr {
            base: Some(EBX),
            index: None,
            disp: DATA as i32,
        }),
    });
    // * 1.5 (the "a" constant via ld1 + ld1 + add... keep simple: *1.5)
    a.inst(Inst::Fld1);
    a.inst(Inst::Fld1);
    a.inst(Inst::Farith {
        op: FpArithOp::Add,
        form: FpArithForm::StiSt0 { i: 1, pop: true },
    }); // 2.0
    a.inst(Inst::Farith {
        op: FpArithOp::Mul,
        form: FpArithForm::StiSt0 { i: 1, pop: true },
    }); // x*2
    a.inst(Inst::Farith {
        op: FpArithOp::Add,
        form: FpArithForm::St0Mem(
            Size2::D,
            Addr {
                base: Some(EBX),
                index: None,
                disp: (DATA + 0x8000) as i32,
            },
        ),
    });
    a.inst(Inst::Fst {
        dst: FpOperand::M64(Addr {
            base: Some(EBX),
            index: None,
            disp: (DATA + 0x8000) as i32,
        }),
        pop: true,
    });
    a.inc(EAX);
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(RESULT), EAX);
    a.hlt();
}

fn daxpy_native(cb: &mut CodeBuilder, iters: u32) {
    shared_native_loop(cb, iters, |cb| {
        let (x, y) = (ngr(3), ngr(4));
        cb.push(Op::AndImm {
            d: x,
            imm: 1023,
            a: ngr(0),
        });
        cb.stop();
        cb.push(Op::ShlImm {
            d: x,
            a: x,
            count: 3,
        });
        cb.stop();
        cb.push(Op::Add {
            d: y,
            a: x,
            b: ngr(1),
        });
        cb.stop();
        cb.push(Op::AddImm {
            d: x,
            imm: 0x8000,
            a: y,
        });
        cb.stop();
        let (fx, fy) = (Fr(32), Fr(33));
        cb.push(Op::Ldf {
            fmt: FFmt::D,
            f: fx,
            addr: y,
            spec: false,
        });
        cb.push(Op::Ldf {
            fmt: FFmt::D,
            f: fy,
            addr: x,
            spec: false,
        });
        cb.stop();
        // y += 2*x in one fma (f34 = 2.0 preloaded outside... compute
        // 2x = x+x with fma x*1+x).
        cb.push(Op::Fma {
            d: Fr(35),
            a: fx,
            b: F1,
            c: fx,
        });
        cb.stop();
        cb.push(Op::Fma {
            d: fy,
            a: Fr(35),
            b: F1,
            c: fy,
        });
        cb.stop();
        cb.push(Op::Stf {
            fmt: FFmt::D,
            f: fy,
            addr: x,
        });
        cb.stop();
        cb.push(Op::AddImm {
            d: ngr(10),
            imm: 1,
            a: ngr(10),
        });
        cb.stop();
    });
}

/// Horner polynomial evaluation with FXCH juggling (the paper's FXCHG
/// elimination showcase).
fn poly_ia32(a: &mut Asm, iters: u32) {
    a.mov_ri(ECX, iters as i32);
    let top = a.label();
    a.bind(top);
    a.mov_rr(EBX, ECX);
    a.alu_ri(AluOp::And, EBX, 1023);
    a.shift_i(ShiftOp::Shl, EBX, 3);
    a.inst(Inst::Fld {
        src: FpOperand::M64(Addr {
            base: Some(EBX),
            index: None,
            disp: DATA as i32,
        }),
    }); // x
    a.inst(Inst::Fld1); // acc = 1
                        // acc = acc*x + 1, three times, with fxch between.
    for _ in 0..3 {
        a.inst(Inst::Fxch { i: 1 }); // st0=x, st1=acc
        a.inst(Inst::Fxch { i: 1 }); // juggle (compiler-style noise)
        a.inst(Inst::Farith {
            op: FpArithOp::Mul,
            form: FpArithForm::St0Sti(1),
        }); // acc *= x
        a.inst(Inst::Fld1);
        a.inst(Inst::Farith {
            op: FpArithOp::Add,
            form: FpArithForm::StiSt0 { i: 1, pop: true },
        }); // acc += 1
    }
    a.inst(Inst::Fst {
        dst: FpOperand::M64(Addr::abs(RESULT)),
        pop: true,
    });
    a.inst(Inst::Fst {
        dst: FpOperand::St(0),
        pop: true,
    }); // drop x
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.hlt();
}

fn poly_native(cb: &mut CodeBuilder, iters: u32) {
    shared_native_loop(cb, iters, |cb| {
        let x = ngr(3);
        cb.push(Op::AndImm {
            d: x,
            imm: 1023,
            a: ngr(0),
        });
        cb.stop();
        cb.push(Op::ShlImm {
            d: x,
            a: x,
            count: 3,
        });
        cb.stop();
        cb.push(Op::Add {
            d: x,
            a: x,
            b: ngr(1),
        });
        cb.stop();
        cb.push(Op::Ldf {
            fmt: FFmt::D,
            f: Fr(32),
            addr: x,
            spec: false,
        });
        cb.stop();
        // acc = ((x + 1)x + 1)x + 1 as three fmas.
        cb.push(Op::Fma {
            d: Fr(33),
            a: F1,
            b: Fr(32),
            c: F1,
        });
        cb.stop();
        cb.push(Op::Fma {
            d: Fr(33),
            a: Fr(33),
            b: Fr(32),
            c: F1,
        });
        cb.stop();
        cb.push(Op::Fma {
            d: Fr(33),
            a: Fr(33),
            b: Fr(32),
            c: F1,
        });
        cb.stop();
        cb.push(Op::Stf {
            fmt: FFmt::D,
            f: Fr(33),
            addr: ngr(2),
        });
        cb.stop();
    });
}

/// SSE scalar dot-product fragment.
fn sse_dot_ia32(a: &mut Asm, iters: u32) {
    a.mov_ri(ECX, iters as i32);
    a.inst(Inst::Xorps {
        dst: Xmm::new(2),
        src: XmmM::Reg(Xmm::new(2)),
    });
    let top = a.label();
    a.bind(top);
    a.mov_rr(EBX, ECX);
    a.alu_ri(AluOp::And, EBX, 2047);
    a.shift_i(ShiftOp::Shl, EBX, 2);
    a.inst(Inst::Movss {
        xmm: Xmm::new(0),
        rm: XmmM::Mem(Addr {
            base: Some(EBX),
            index: None,
            disp: (DATA + 0x1_0000) as i32,
        }),
        to_xmm: true,
    });
    a.inst(Inst::SseArith {
        op: SseOp::Mul,
        scalar: true,
        dst: Xmm::new(0),
        src: XmmM::Mem(Addr {
            base: Some(EBX),
            index: None,
            disp: (DATA + 0x1_8000) as i32,
        }),
    });
    a.inst(Inst::SseArith {
        op: SseOp::Add,
        scalar: true,
        dst: Xmm::new(2),
        src: XmmM::Reg(Xmm::new(0)),
    });
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.inst(Inst::Movss {
        xmm: Xmm::new(2),
        rm: XmmM::Mem(Addr::abs(RESULT)),
        to_xmm: false,
    });
    a.hlt();
}

fn sse_dot_native(cb: &mut CodeBuilder, iters: u32) {
    shared_native_loop(cb, iters, |cb| {
        let x = ngr(3);
        cb.push(Op::AndImm {
            d: x,
            imm: 2047,
            a: ngr(0),
        });
        cb.stop();
        cb.push(Op::ShlImm {
            d: x,
            a: x,
            count: 2,
        });
        cb.stop();
        cb.push(Op::Add {
            d: x,
            a: x,
            b: ngr(1),
        });
        cb.stop();
        let y = ngr(4);
        cb.push(Op::AddImm {
            d: y,
            imm: 0x8000,
            a: x,
        });
        cb.push(Op::AddImm {
            d: x,
            imm: 0x1_0000,
            a: x,
        });
        cb.stop();
        cb.push(Op::Ldf {
            fmt: FFmt::S,
            f: Fr(32),
            addr: x,
            spec: false,
        });
        cb.push(Op::Ldf {
            fmt: FFmt::S,
            f: Fr(33),
            addr: y,
            spec: false,
        });
        cb.stop();
        cb.push(Op::Fma {
            d: Fr(34),
            a: Fr(32),
            b: Fr(33),
            c: Fr(34),
        });
        cb.stop();
    });
}

/// Packed-single SAXPY (ADDPS/MULPS), 4 lanes at a time.
fn sse_packed_ia32(a: &mut Asm, iters: u32) {
    a.mov_ri(ECX, iters as i32);
    let top = a.label();
    a.bind(top);
    a.mov_rr(EBX, ECX);
    a.alu_ri(AluOp::And, EBX, 511);
    a.shift_i(ShiftOp::Shl, EBX, 4);
    a.inst(Inst::Movps {
        xmm: Xmm::new(0),
        rm: XmmM::Mem(Addr {
            base: Some(EBX),
            index: None,
            disp: (DATA + 0x1_0000) as i32,
        }),
        to_xmm: true,
        aligned: true,
    });
    a.inst(Inst::SseArith {
        op: SseOp::Mul,
        scalar: false,
        dst: Xmm::new(0),
        src: XmmM::Mem(Addr {
            base: Some(EBX),
            index: None,
            disp: (DATA + 0x1_8000) as i32,
        }),
    });
    a.inst(Inst::SseArith {
        op: SseOp::Add,
        scalar: false,
        dst: Xmm::new(0),
        src: XmmM::Mem(Addr {
            base: Some(EBX),
            index: None,
            disp: (DATA + 0x1_8000) as i32,
        }),
    });
    a.inst(Inst::Movps {
        xmm: Xmm::new(0),
        rm: XmmM::Mem(Addr {
            base: Some(EBX),
            index: None,
            disp: (DATA + 0x1_0000) as i32,
        }),
        to_xmm: false,
        aligned: true,
    });
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.hlt();
}

fn sse_packed_native(cb: &mut CodeBuilder, iters: u32) {
    shared_native_loop(cb, iters, |cb| {
        let x = ngr(3);
        cb.push(Op::AndImm {
            d: x,
            imm: 511,
            a: ngr(0),
        });
        cb.stop();
        cb.push(Op::ShlImm {
            d: x,
            a: x,
            count: 4,
        });
        cb.stop();
        cb.push(Op::AddImm {
            d: x,
            imm: 0x1_0000,
            a: x,
        });
        cb.stop();
        cb.push(Op::Add {
            d: x,
            a: x,
            b: ngr(1),
        });
        cb.stop();
        let y = ngr(4);
        cb.push(Op::AddImm {
            d: y,
            imm: 0x8000,
            a: x,
        });
        cb.stop();
        // Two 8-byte packed halves per 16-byte vector.
        for half in 0..2i64 {
            let (xa, ya) = (ngr(5), ngr(6));
            cb.push(Op::AddImm {
                d: xa,
                imm: half * 8,
                a: x,
            });
            cb.push(Op::AddImm {
                d: ya,
                imm: half * 8,
                a: y,
            });
            cb.stop();
            cb.push(Op::Ldf {
                fmt: FFmt::Raw,
                f: Fr(32),
                addr: xa,
                spec: false,
            });
            cb.push(Op::Ldf {
                fmt: FFmt::Raw,
                f: Fr(33),
                addr: ya,
                spec: false,
            });
            cb.stop();
            cb.push(Op::Fpma {
                d: Fr(34),
                a: Fr(32),
                b: Fr(33),
                c: Fr(33),
            });
            cb.stop();
            cb.push(Op::Stf {
                fmt: FFmt::Raw,
                f: Fr(34),
                addr: xa,
            });
            cb.stop();
        }
    });
}

/// MMX byte-blend kernel.
fn mmx_ia32(a: &mut Asm, iters: u32) {
    a.mov_ri(ECX, iters as i32);
    let top = a.label();
    a.bind(top);
    a.mov_rr(EBX, ECX);
    a.alu_ri(AluOp::And, EBX, 4095);
    a.shift_i(ShiftOp::Shl, EBX, 3);
    a.inst(Inst::Movq {
        mm: Mm::new(0),
        src: MmM::Mem(Addr {
            base: Some(EBX),
            index: None,
            disp: DATA as i32,
        }),
        to_mm: true,
    });
    a.inst(Inst::PAlu {
        op: MmxOp::PAdd(1),
        dst: Mm::new(0),
        src: MmM::Mem(Addr {
            base: Some(EBX),
            index: None,
            disp: (DATA + 0x8000) as i32,
        }),
    });
    a.inst(Inst::PAlu {
        op: MmxOp::Pxor,
        dst: Mm::new(0),
        src: MmM::Reg(Mm::new(0)),
    });
    a.inst(Inst::Movq {
        mm: Mm::new(0),
        src: MmM::Mem(Addr {
            base: Some(EBX),
            index: None,
            disp: DATA as i32,
        }),
        to_mm: false,
    });
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.inst(Inst::Emms);
    a.hlt();
}

fn mmx_native(cb: &mut CodeBuilder, iters: u32) {
    shared_native_loop(cb, iters, |cb| {
        let x = ngr(3);
        cb.push(Op::AndImm {
            d: x,
            imm: 4095,
            a: ngr(0),
        });
        cb.stop();
        cb.push(Op::ShlImm {
            d: x,
            a: x,
            count: 3,
        });
        cb.stop();
        cb.push(Op::Add {
            d: x,
            a: x,
            b: ngr(1),
        });
        cb.stop();
        let y = ngr(4);
        cb.push(Op::AddImm {
            d: y,
            imm: 0x8000,
            a: x,
        });
        cb.stop();
        cb.push(Op::Ld {
            sz: 8,
            d: ngr(5),
            addr: x,
            spec: false,
        });
        cb.push(Op::Ld {
            sz: 8,
            d: ngr(6),
            addr: y,
            spec: false,
        });
        cb.stop();
        cb.push(Op::Padd {
            sz: 1,
            d: ngr(5),
            a: ngr(5),
            b: ngr(6),
        });
        cb.stop();
        cb.push(Op::Xor {
            d: ngr(5),
            a: ngr(5),
            b: ngr(5),
        });
        cb.stop();
        cb.push(Op::St {
            sz: 8,
            addr: x,
            val: ngr(5),
        });
        cb.stop();
    });
}

fn wl(
    name: &'static str,
    build_ia32: fn(&mut Asm, u32),
    build_native: fn(&mut CodeBuilder, u32),
    scale: u32,
) -> Workload {
    Workload {
        name,
        build_ia32,
        build_native,
        data: fp_data,
        scale,
        native_fraction: 0.0,
        idle_fraction: 0.0,
        writable_code: false,
        uses_os: false,
    }
}

/// The FP/SIMD kernels.
pub fn all() -> Vec<Workload> {
    vec![
        wl("daxpy", daxpy_ia32, daxpy_native, 30_000),
        wl("poly", poly_ia32, poly_native, 25_000),
        wl("sse_dot", sse_dot_ia32, sse_dot_native, 40_000),
        wl("sse_saxpy", sse_packed_ia32, sse_packed_native, 25_000),
        wl("mmx_blend", mmx_ia32, mmx_native, 30_000),
    ]
}

#[allow(unused)]
fn _keep(_: Pr) {}
use ipf::regs::Pr;
#[allow(unused)]
fn _keep2() {
    let _ = (F0, npr(0));
}
