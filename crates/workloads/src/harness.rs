//! Runners for the two baselines: native Itanium code and the IA-32
//! hardware model. (The Execution Layer runner lives in the `bench`
//! crate, which depends on the translator.)

use crate::{Workload, DATA, DATA_SIZE, RESULT};
use ia32::asm::{Asm, Image};
use ia32::interp::{Event, Interp};
use ia32::mem::{GuestMem, Prot};
use ipf::machine::{Bus, BusError, CodeArena, Machine, StopReason};

/// Address native workload code branches to when done.
pub const NATIVE_EXIT: u64 = 0xDEAD_0000;

/// Where native workload code is placed.
pub const NATIVE_CODE_BASE: u64 = 0x7000_0000;

/// Builds the IA-32 image for a workload at the given scale.
pub fn build_image(w: &Workload, scale: u32) -> Image {
    let mut a = Asm::new(0x40_0000);
    (w.build_ia32)(&mut a, scale);
    let mut img = Image::from_asm(&a).with_bss(DATA, DATA_SIZE);
    if w.writable_code {
        img = img.with_writable_code();
    }
    for (addr, bytes) in (w.data)() {
        img = img.with_data(addr, bytes);
    }
    img
}

struct MemBus<'a>(&'a mut GuestMem);

impl Bus for MemBus<'_> {
    fn read(&mut self, addr: u64, size: u32) -> Result<u64, BusError> {
        self.0.read(addr, size).map_err(|_| BusError::Unmapped)
    }

    fn write(&mut self, addr: u64, size: u32, val: u64) -> Result<(), BusError> {
        self.0
            .write(addr, size, val)
            .map_err(|_| BusError::Unmapped)
    }
}

/// Result of a native run.
#[derive(Clone, Copy, Debug)]
pub struct NativeRun {
    /// Simulated cycles.
    pub cycles: u64,
    /// Checksum stored at [`RESULT`].
    pub result: u64,
}

/// Runs the native Itanium build of `w` under the IPF cycle model.
///
/// # Panics
///
/// Panics if the workload misbehaves (faults or fails to finish).
pub fn run_native(w: &Workload, scale: u32, timing: ipf::Timing) -> NativeRun {
    let mut cb = ipf::asm::CodeBuilder::new();
    (w.build_native)(&mut cb, scale);
    let (bundles, _) = cb.assemble(NATIVE_CODE_BASE);
    let mut arena = CodeArena::new(NATIVE_CODE_BASE);
    arena.append(bundles, 0);
    let mut mem = GuestMem::new();
    mem.map(DATA as u64, DATA_SIZE as u64, Prot::rw());
    for (addr, bytes) in (w.data)() {
        mem.write_forced(addr as u64, &bytes);
    }
    let mut m = Machine::new(arena, timing);
    m.set_ip(NATIVE_CODE_BASE, 0);
    let stop = {
        let mut bus = MemBus(&mut mem);
        m.run(&mut bus, u64::MAX / 2)
    };
    match stop {
        StopReason::ExternalBranch { target, .. } if target == NATIVE_EXIT => {}
        other => panic!("native {} did not finish cleanly: {other:?}", w.name),
    }
    NativeRun {
        cycles: m.cycles,
        result: mem.read(RESULT as u64, 8).unwrap_or(0),
    }
}

/// Result of an IA-32 hardware-model run.
#[derive(Clone, Copy, Debug)]
pub struct Ia32Run {
    /// Simulated cycles under the IA-32 timing model.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Checksum stored at [`RESULT`].
    pub result: u64,
}

/// Runs the IA-32 build under the IA-32 ("Xeon") cycle model — the
/// Figure 8 baseline.
///
/// # Panics
///
/// Panics if the workload faults or fails to finish.
pub fn run_ia32_hw(w: &Workload, scale: u32, timing: ia32::timing::Timing) -> Ia32Run {
    let img = build_image(w, scale);
    let mut mem = GuestMem::new();
    let cpu = img.load(&mut mem);
    let mut interp = Interp::with_timing(timing);
    interp.cpu = cpu;
    match interp.run(&mut mem, u64::MAX / 2) {
        Ok(Event::Halt) => {}
        other => panic!("ia32 {} did not finish cleanly: {other:?}", w.name),
    }
    Ia32Run {
        cycles: interp.stats.cycles,
        instructions: interp.stats.instructions,
        result: mem.read(RESULT as u64, 8).unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every workload's two backends must terminate; the INT kernels'
    /// native checksums are not required to equal the IA-32 checksums
    /// (they are baselines, not oracles), but both sides must do real
    /// work.
    #[test]
    fn all_workloads_run_both_backends() {
        let mut all = crate::spec_int();
        all.extend(crate::spec_fp());
        all.push(crate::sysmark());
        all.push(crate::misalign_heavy());
        all.extend(
            crate::indirect_kernels()
                .into_iter()
                .filter(|w| w.name != "eon"),
        );
        for w in &all {
            let scale = (w.scale / 50).max(64);
            let native = run_native(w, scale, ipf::Timing::default());
            assert!(native.cycles > 0, "{}: native did nothing", w.name);
            let hw = run_ia32_hw(w, scale, ia32::timing::Timing::default());
            assert!(hw.cycles > 0, "{}: ia32 did nothing", w.name);
            assert!(hw.instructions > 64, "{}: too little work", w.name);
        }
    }

    #[test]
    fn mcf_backends_chase_pointers() {
        let w = crate::spec_int().remove(3);
        assert_eq!(w.name, "mcf");
        let native = run_native(&w, 1000, ipf::Timing::default());
        let hw = run_ia32_hw(&w, 1000, ia32::timing::Timing::default());
        // Both visit the same permutation; the checksums match exactly
        // because the node values are identical.
        assert_eq!(
            native.result & 0xFFFF_FFFF,
            hw.result & 0xFFFF_FFFF,
            "mcf native and IA-32 must visit the same nodes"
        );
    }
}
