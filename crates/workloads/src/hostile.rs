//! Hostile-guest kernels: workloads built to stress the translator's
//! survival machinery rather than its speed.
//!
//! * `sigstorm` — a tight arithmetic loop bombarded with asynchronous
//!   signals; the handler counts deliveries in a side cell and returns
//!   via `sigreturn`. The checksum must be identical with or without
//!   signals (delivery transparency).
//! * `guest_jit` — a guest-side JIT: every iteration patches the
//!   immediate of a `mov eax, imm32; ret` stub *on its own code page*
//!   and calls it, driving per-extent SMC invalidation and the
//!   thrash governor.
//! * `nested_handler` — like `sigstorm` but the handler spins long
//!   enough that a second signal can land while the first is still
//!   running (depth-bounded nesting).
//!
//! All three end with `HLT` and store a checksum at [`RESULT`] that is
//! independent of signal arrival times and SMC handling strategy: an
//! interpreter run with *no* signal plan is a valid oracle for the
//! final memory state at [`RESULT`].

use crate::int::{n, native_loop};
use crate::{prng_bytes, Workload, DATA, RESULT};
use ia32::asm::Asm;
use ia32::inst::*;
use ia32::regs::*;
use ia32::Cond;
use ipf::asm::CodeBuilder;
use ipf::inst::Op;

/// Where `build_image` places the code (fixed by the harness).
const CODE_BASE: u32 = 0x40_0000;
/// Fixed handler entry: kernels nop-pad up to this offset so the
/// address can be a `mov ebx, imm` constant in the `signal` syscall.
const HANDLER: u32 = CODE_BASE + 0x10;
/// Fixed patch-site entry for `guest_jit` (`mov eax, imm32; ret`).
const PATCH: u32 = CODE_BASE + 0x40;
/// Side cell the handlers count deliveries in — deliberately far from
/// [`RESULT`] so handler effects never feed the checksum.
const HCOUNT: u32 = DATA + 0x3_0000;

/// Simulated-Linux syscall numbers (mirrors `btlib::sys`; this crate
/// must not depend on the OS layer).
const SYS_SIGNAL: i32 = 48;
const SYS_SIGRETURN: i32 = 119;

fn rnd_data() -> Vec<(u32, Vec<u8>)> {
    vec![(DATA, prng_bytes(0x5EED, 0x1_0000))]
}

/// Pads with `NOP` until the cursor reaches `addr`.
fn pad_to(a: &mut Asm, addr: u32) {
    assert!(a.here() <= addr, "code overran fixed offset {addr:#x}");
    while a.here() < addr {
        a.nop();
    }
}

/// Emits `signal(HANDLER)` registration.
fn register_handler(a: &mut Asm) {
    a.mov_ri(EAX, SYS_SIGNAL);
    a.mov_ri(EBX, HANDLER as i32);
    a.int(0x80);
}

/// Emits the minimal async handler: bump [`HCOUNT`], then `sigreturn`.
/// Only touches `EAX` (restored from the 3-word signal frame) and
/// `EFLAGS` (likewise restored), so the interrupted computation cannot
/// observe it.
fn emit_counting_handler(a: &mut Asm) {
    a.mov_load(EAX, Addr::abs(HCOUNT));
    a.inc(EAX);
    a.mov_store(Addr::abs(HCOUNT), EAX);
    a.mov_ri(EAX, SYS_SIGRETURN);
    a.int(0x80);
}

// --------------------------------------------------------------------
// sigstorm
// --------------------------------------------------------------------

fn sigstorm_ia32(a: &mut Asm, iters: u32) {
    let start = a.label();
    a.jmp(start);
    pad_to(a, HANDLER);
    emit_counting_handler(a);
    a.bind(start);
    register_handler(a);
    a.mov_ri(ECX, iters as i32);
    a.mov_ri(EDI, 0);
    a.mov_ri(ESI, DATA as i32);
    let top = a.label();
    a.bind(top);
    // Data-dependent mix over the random buffer; every value lives in
    // a register the handler is guaranteed to preserve.
    a.mov_rr(EAX, ECX);
    a.alu_ri(AluOp::And, EAX, 0xFFFC);
    a.mov_load(EBX, Addr::base_index(ESI, EAX, 1, 0));
    a.lea(EDI, Addr::base_index(EBX, EDI, 2, 0));
    a.alu_rr(AluOp::Xor, EDI, ECX);
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(RESULT), EDI);
    a.hlt();
}

fn sigstorm_native(cb: &mut CodeBuilder, iters: u32) {
    native_loop(cb, iters, |cb| {
        cb.push(Op::AndImm {
            d: n(3),
            imm: 0xFFFC,
            a: n(0),
        });
        cb.stop();
        cb.push(Op::Add {
            d: n(3),
            a: n(3),
            b: n(1),
        });
        cb.stop();
        cb.push(Op::Ld {
            sz: 4,
            d: n(4),
            addr: n(3),
            spec: false,
        });
        cb.stop();
        cb.push(Op::Shladd {
            d: n(10),
            a: n(10),
            count: 1,
            b: n(4),
        });
        cb.stop();
        cb.push(Op::Xor {
            d: n(10),
            a: n(10),
            b: n(0),
        });
        cb.stop();
    });
}

// --------------------------------------------------------------------
// guest_jit
// --------------------------------------------------------------------

fn guest_jit_ia32(a: &mut Asm, iters: u32) {
    let start = a.label();
    a.jmp(start);
    pad_to(a, HANDLER);
    emit_counting_handler(a);
    pad_to(a, PATCH);
    // The stub the guest JIT rewrites: `mov eax, imm32; ret`. The
    // imm32 at PATCH+1 is overwritten every iteration.
    let stub = a.label();
    a.bind(stub);
    a.mov_ri(EAX, 0x5EED_F00D_u32 as i32);
    a.ret();
    a.bind(start);
    register_handler(a);
    a.mov_ri(ECX, iters as i32);
    a.mov_ri(EDI, 0);
    let top = a.label();
    a.bind(top);
    // Patch the stub's immediate with the loop counter, then call it.
    // The store lands on the code page: under the translator it raises
    // an SMC event every single iteration.
    a.mov_store(Addr::abs(PATCH + 1), ECX);
    a.call(stub);
    a.alu_rr(AluOp::Add, EDI, EAX);
    a.mov_rr(EAX, EDI);
    a.shift_i(ShiftOp::Shl, EAX, 5);
    a.alu_rr(AluOp::Xor, EDI, EAX);
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(RESULT), EDI);
    a.hlt();
}

fn guest_jit_native(cb: &mut CodeBuilder, iters: u32) {
    // Native code has no need to JIT: compute the same fold directly.
    native_loop(cb, iters, |cb| {
        cb.push(Op::Add {
            d: n(10),
            a: n(10),
            b: n(0),
        });
        cb.stop();
        cb.push(Op::Shladd {
            d: n(4),
            a: n(10),
            count: 3,
            b: n(10),
        });
        cb.stop();
        cb.push(Op::Xor {
            d: n(10),
            a: n(10),
            b: n(4),
        });
        cb.stop();
    });
}

// --------------------------------------------------------------------
// nested_handler
// --------------------------------------------------------------------

fn nested_handler_ia32(a: &mut Asm, iters: u32) {
    let start = a.label();
    a.jmp(start);
    pad_to(a, HANDLER);
    // This handler spins before returning so a second arrival can land
    // while it runs (the engine nests up to the OS depth cap). ECX is
    // saved the IA-32 way; EAX/EFLAGS come back from the signal frame.
    a.push_r(ECX);
    a.mov_load(EAX, Addr::abs(HCOUNT));
    a.inc(EAX);
    a.mov_store(Addr::abs(HCOUNT), EAX);
    a.mov_ri(ECX, 96);
    let spin = a.label();
    a.bind(spin);
    a.dec(ECX);
    a.jcc(Cond::Ne, spin);
    a.pop_r(ECX);
    a.mov_ri(EAX, SYS_SIGRETURN);
    a.int(0x80);
    a.bind(start);
    register_handler(a);
    a.mov_ri(ECX, iters as i32);
    a.mov_ri(EDI, 0);
    a.mov_ri(ESI, DATA as i32);
    let top = a.label();
    a.bind(top);
    a.mov_rr(EAX, ECX);
    a.alu_ri(AluOp::And, EAX, 0xFFF8);
    a.mov_load(EBX, Addr::base_index(ESI, EAX, 1, 0));
    a.alu_rr(AluOp::Add, EDI, EBX);
    a.mov_rr(EAX, EDI);
    a.shift_i(ShiftOp::Shr, EAX, 7);
    a.alu_rr(AluOp::Xor, EDI, EAX);
    a.alu_ri(AluOp::Add, EDI, 0x9E37);
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(RESULT), EDI);
    a.hlt();
}

fn nested_handler_native(cb: &mut CodeBuilder, iters: u32) {
    native_loop(cb, iters, |cb| {
        cb.push(Op::AndImm {
            d: n(3),
            imm: 0xFFF8,
            a: n(0),
        });
        cb.stop();
        cb.push(Op::Add {
            d: n(3),
            a: n(3),
            b: n(1),
        });
        cb.stop();
        cb.push(Op::Ld {
            sz: 4,
            d: n(4),
            addr: n(3),
            spec: false,
        });
        cb.stop();
        cb.push(Op::Add {
            d: n(10),
            a: n(10),
            b: n(4),
        });
        cb.stop();
        cb.push(Op::AddImm {
            d: n(10),
            imm: 0x9E3,
            a: n(10),
        });
        cb.stop();
    });
}

// --------------------------------------------------------------------
// registry
// --------------------------------------------------------------------

/// The three hostile kernels. All have `uses_os: true`; `guest_jit`
/// additionally needs `writable_code`.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "sigstorm",
            build_ia32: sigstorm_ia32,
            build_native: sigstorm_native,
            data: rnd_data,
            scale: 40_000,
            native_fraction: 0.0,
            idle_fraction: 0.0,
            writable_code: false,
            uses_os: true,
        },
        Workload {
            name: "guest_jit",
            build_ia32: guest_jit_ia32,
            build_native: guest_jit_native,
            data: rnd_data,
            scale: 3_000,
            native_fraction: 0.0,
            idle_fraction: 0.0,
            writable_code: true,
            uses_os: true,
        },
        Workload {
            name: "nested_handler",
            build_ia32: nested_handler_ia32,
            build_native: nested_handler_native,
            data: rnd_data,
            scale: 30_000,
            native_fraction: 0.0,
            idle_fraction: 0.0,
            writable_code: false,
            uses_os: true,
        },
    ]
}
