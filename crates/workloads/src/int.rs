//! The twelve SPEC-CPU2000-INT-like kernels of Figure 5, each modeled
//! on the characteristic that dominated the paper's score for that
//! benchmark, plus the misalignment-heavy workload.

use crate::{harness::NATIVE_EXIT, prng_bytes, Workload, DATA, RESULT};
use ia32::asm::Asm;
use ia32::inst::*;
use ia32::regs::*;
use ia32::Cond;
use ipf::asm::CodeBuilder;
use ipf::inst::{CmpRel, Op, Target};
use ipf::regs::{Fr, Gr, Pr, F0, R0};

fn rnd_data() -> Vec<(u32, Vec<u8>)> {
    vec![(DATA, prng_bytes(0x5EED, 0x1_0000))]
}

/// Linked-list data for `mcf`: 32-bit nodes `(next, value)` and, in a
/// separate area, 64-bit nodes `(next8, value8)` for the native build —
/// the paper's "smaller data footprint of the IA-32 version" effect.
fn mcf_data() -> Vec<(u32, Vec<u8>)> {
    const NODES: u32 = 4096;
    let perm: Vec<u32> = {
        // A single cycle visiting every node in shuffled order.
        let mut idx: Vec<u32> = (1..NODES).collect();
        let rnd = prng_bytes(7, idx.len() * 2);
        for i in (1..idx.len()).rev() {
            let j = (u16::from_le_bytes([rnd[2 * i], rnd[2 * i + 1]]) as usize) % (i + 1);
            idx.swap(i, j);
        }
        idx
    };
    let mut n32 = vec![0u8; NODES as usize * 8];
    let mut n64 = vec![0u8; NODES as usize * 16];
    let mut cur = 0u32;
    for &nxt in perm.iter().chain(std::iter::once(&0)) {
        let a32 = DATA + cur * 8;
        let a64 = (DATA + 0x2_0000) + cur * 16;
        n32[(a32 - DATA) as usize..][..4].copy_from_slice(&(DATA + nxt * 8).to_le_bytes());
        n32[(a32 - DATA) as usize + 4..][..4].copy_from_slice(&cur.to_le_bytes());
        n64[(a64 - (DATA + 0x2_0000)) as usize..][..8]
            .copy_from_slice(&((DATA + 0x2_0000) as u64 + nxt as u64 * 16).to_le_bytes());
        n64[(a64 - (DATA + 0x2_0000)) as usize + 8..][..8]
            .copy_from_slice(&(cur as u64).to_le_bytes());
        cur = nxt;
        if cur == 0 {
            break;
        }
    }
    vec![(DATA, n32), (DATA + 0x2_0000, n64)]
}

// --------------------------------------------------------------------
// native-side helpers
// --------------------------------------------------------------------

pub(crate) fn n(i: u16) -> Gr {
    Gr(32 + i)
}

pub(crate) fn nf(i: u16) -> Fr {
    Fr(32 + i)
}

pub(crate) fn np(i: u16) -> Pr {
    Pr(1 + i)
}

/// Emits `iters` countdown-loop scaffolding around `body`.
pub(crate) fn native_loop(cb: &mut CodeBuilder, iters: u32, body: impl FnOnce(&mut CodeBuilder)) {
    cb.push(Op::Movl {
        d: n(0),
        imm: iters as u64,
    });
    cb.push(Op::Movl {
        d: n(1),
        imm: DATA as u64,
    });
    cb.push(Op::Movl {
        d: n(2),
        imm: RESULT as u64,
    });
    cb.stop();
    let top = cb.label();
    cb.bind(top);
    body(cb);
    cb.push(Op::AddImm {
        d: n(0),
        imm: -1,
        a: n(0),
    });
    cb.stop();
    cb.push(Op::CmpImm {
        rel: CmpRel::Ne,
        pt: np(0),
        pf: np(1),
        imm: 0,
        b: n(0),
    });
    cb.stop();
    cb.push_pred(
        np(0),
        Op::Br {
            target: Target::Label(top.0),
        },
    );
    cb.stop();
    // Store the checksum from n(10) and exit.
    cb.push(Op::St {
        sz: 8,
        addr: n(2),
        val: n(10),
    });
    cb.stop();
    cb.push(Op::Br {
        target: Target::Abs(NATIVE_EXIT),
    });
    cb.stop();
}

/// Emits common IA-32 loop scaffolding: ECX = iters, EDI = checksum.
pub(crate) fn ia32_loop(a: &mut Asm, iters: u32, body: impl FnOnce(&mut Asm)) {
    a.mov_ri(ECX, iters as i32);
    a.mov_ri(EDI, 0);
    a.mov_ri(ESI, DATA as i32);
    let top = a.label();
    a.bind(top);
    body(a);
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(RESULT), EDI);
    a.hlt();
}

// --------------------------------------------------------------------
// the kernels
// --------------------------------------------------------------------

/// gzip: LZ-style byte matching over a window — tight, hot-friendly.
fn gzip_ia32(a: &mut Asm, iters: u32) {
    ia32_loop(a, iters, |a| {
        // h = (h*31 + data[i & 0xFFF]) ; match check against window.
        a.mov_rr(EAX, ECX);
        a.alu_ri(AluOp::And, EAX, 0xFFF);
        a.inst(Inst::Movzx {
            dst: EBX,
            src_size: ia32::Size::B,
            src: Rm::Mem(Addr::base_index(ESI, EAX, 1, 0)),
        });
        a.lea(EDI, Addr::base_index(EBX, EDI, 2, 0)); // edi = edi*2 + b
        a.mov_rr(EDX, EDI);
        a.alu_ri(AluOp::And, EDX, 0x7FF);
        a.inst(Inst::Movzx {
            dst: EDX,
            src_size: ia32::Size::B,
            src: Rm::Mem(Addr::base_index(ESI, EDX, 1, 0x1000)),
        });
        a.cmp_rr(EBX, EDX);
        let nomatch = a.label();
        a.jcc(Cond::Ne, nomatch);
        a.inc(EDI);
        a.bind(nomatch);
    });
}

fn gzip_native(cb: &mut CodeBuilder, iters: u32) {
    native_loop(cb, iters, |cb| {
        cb.push(Op::AndImm {
            d: n(3),
            imm: 0xFFF,
            a: n(0),
        });
        cb.stop();
        cb.push(Op::Add {
            d: n(3),
            a: n(3),
            b: n(1),
        });
        cb.stop();
        cb.push(Op::Ld {
            sz: 1,
            d: n(4),
            addr: n(3),
            spec: false,
        });
        cb.stop();
        cb.push(Op::Shladd {
            d: n(10),
            a: n(10),
            count: 1,
            b: n(4),
        });
        cb.stop();
        cb.push(Op::AndImm {
            d: n(5),
            imm: 0x7FF,
            a: n(10),
        });
        cb.stop();
        cb.push(Op::Add {
            d: n(5),
            a: n(5),
            b: n(1),
        });
        cb.push(Op::AddImm {
            d: n(5),
            imm: 0x1000,
            a: n(5),
        });
        cb.stop();
        cb.push(Op::Ld {
            sz: 1,
            d: n(6),
            addr: n(5),
            spec: false,
        });
        cb.stop();
        cb.push(Op::Cmp {
            rel: CmpRel::Eq,
            pt: np(2),
            pf: np(3),
            a: n(4),
            b: n(6),
        });
        cb.stop();
        cb.push_pred(
            np(2),
            Op::AddImm {
                d: n(10),
                imm: 1,
                a: n(10),
            },
        );
        cb.stop();
    });
}

/// mcf: pointer chasing; IA-32 uses 32-bit nodes, native 64-bit nodes
/// (the paper's data-footprint effect, modeled through pointer width).
fn mcf_ia32(a: &mut Asm, iters: u32) {
    a.mov_ri(ECX, iters as i32);
    a.mov_ri(EDI, 0);
    a.mov_ri(ESI, DATA as i32); // node cursor
    let top = a.label();
    a.bind(top);
    a.alu_rm(AluOp::Add, EDI, Addr::base_disp(ESI, 4));
    a.mov_load(ESI, Addr::base(ESI)); // next
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(RESULT), EDI);
    a.hlt();
}

fn mcf_native(cb: &mut CodeBuilder, iters: u32) {
    cb.push(Op::Movl {
        d: n(0),
        imm: iters as u64,
    });
    cb.push(Op::Movl {
        d: n(1),
        imm: (DATA + 0x2_0000) as u64, // 64-bit node area
    });
    cb.push(Op::Movl {
        d: n(2),
        imm: RESULT as u64,
    });
    cb.stop();
    let top = cb.label();
    cb.bind(top);
    cb.push(Op::AddImm {
        d: n(3),
        imm: 8,
        a: n(1),
    });
    cb.stop();
    cb.push(Op::Ld {
        sz: 8,
        d: n(4),
        addr: n(3),
        spec: false,
    });
    cb.push(Op::Ld {
        sz: 8,
        d: n(1),
        addr: n(1),
        spec: false,
    });
    cb.stop();
    cb.push(Op::Add {
        d: n(10),
        a: n(10),
        b: n(4),
    });
    cb.push(Op::AddImm {
        d: n(0),
        imm: -1,
        a: n(0),
    });
    cb.stop();
    cb.push(Op::CmpImm {
        rel: CmpRel::Ne,
        pt: np(0),
        pf: np(1),
        imm: 0,
        b: n(0),
    });
    cb.stop();
    cb.push_pred(
        np(0),
        Op::Br {
            target: Target::Label(top.0),
        },
    );
    cb.stop();
    cb.push(Op::St {
        sz: 8,
        addr: n(2),
        val: n(10),
    });
    cb.stop();
    cb.push(Op::Br {
        target: Target::Abs(NATIVE_EXIT),
    });
}

/// crafty: variable shifts through CL and flag-carrying bit fiddling —
/// the translations are flag- and shift-expensive.
fn crafty_ia32(a: &mut Asm, iters: u32) {
    ia32_loop(a, iters, |a| {
        a.mov_rr(EAX, ECX);
        a.mov_rr(EBX, ECX);
        a.alu_ri(AluOp::And, ECX, 0); // keep ECX as counter: save/restore below
        a.mov_rr(ECX, EBX); // (count in low bits)
        a.inst(Inst::Shift {
            op: ShiftOp::Shl,
            size: ia32::Size::D,
            dst: Rm::Reg(EAX),
            count: ShiftCount::Cl,
        });
        a.inst(Inst::Alu {
            op: AluOp::Adc,
            size: ia32::Size::D,
            dst: Rm::Reg(EDI),
            src: RmI::Reg(EAX),
        });
        a.inst(Inst::Shift {
            op: ShiftOp::Sar,
            size: ia32::Size::D,
            dst: Rm::Reg(EAX),
            count: ShiftCount::Imm(3),
        });
        a.inst(Inst::Alu {
            op: AluOp::Sbb,
            size: ia32::Size::D,
            dst: Rm::Reg(EDI),
            src: RmI::Reg(EAX),
        });
        a.mov_rr(ECX, EBX);
    });
}

fn crafty_native(cb: &mut CodeBuilder, iters: u32) {
    native_loop(cb, iters, |cb| {
        cb.push(Op::AndImm {
            d: n(3),
            imm: 31,
            a: n(0),
        });
        cb.stop();
        cb.push(Op::ShlVar {
            d: n(4),
            a: n(0),
            c: n(3),
        });
        cb.stop();
        cb.push(Op::Zxt {
            d: n(4),
            a: n(4),
            size: 4,
        });
        cb.stop();
        cb.push(Op::Add {
            d: n(10),
            a: n(10),
            b: n(4),
        });
        cb.push(Op::ShrImm {
            d: n(5),
            a: n(4),
            count: 3,
            signed: true,
        });
        cb.stop();
        cb.push(Op::Sub {
            d: n(10),
            a: n(10),
            b: n(5),
        });
        cb.stop();
    });
}

/// eon: indirect calls through a method table (C++-style dispatch).
/// Built in two passes: the first learns the method addresses, the
/// second stores them into the in-memory dispatch table at startup.
fn eon_ia32(a: &mut Asm, iters: u32) {
    fn build(a: &mut Asm, iters: u32, fn_addrs: [u32; 4]) -> [u32; 4] {
        let table = (DATA + 0x3000) as i32;
        // Fill the dispatch table at startup.
        for (k, addr) in fn_addrs.iter().enumerate() {
            a.mov_mi(Addr::abs(table as u32 + k as u32 * 4), *addr as i32);
        }
        let fns: [_; 4] = std::array::from_fn(|_| a.label());
        let start = a.label();
        a.jmp(start);
        for (k, l) in fns.iter().enumerate() {
            a.bind(*l);
            a.alu_ri(AluOp::Add, EDI, (k as i32 + 1) * 3);
            a.ret();
        }
        a.bind(start);
        a.mov_ri(ECX, iters as i32);
        a.mov_ri(EDI, 0);
        let top = a.label();
        a.bind(top);
        a.mov_rr(EAX, ECX);
        a.alu_ri(AluOp::And, EAX, 3);
        a.mov_load(
            EDX,
            Addr {
                base: None,
                index: Some((EAX, 4)),
                disp: table,
            },
        );
        a.call_r(EDX);
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        a.mov_store(Addr::abs(RESULT), EDI);
        a.hlt();
        std::array::from_fn(|k| a.label_addr(fns[k]))
    }
    let mut probe = Asm::new(a.base());
    let addrs = build(&mut probe, iters, [0; 4]);
    let addrs2 = build(a, iters, addrs);
    debug_assert_eq!(addrs, addrs2, "layout must be stable");
}

fn eon_native(cb: &mut CodeBuilder, iters: u32) {
    // Natively the same dispatch: indirect branch through a register.
    native_loop(cb, iters, |cb| {
        cb.push(Op::AndImm {
            d: n(3),
            imm: 3,
            a: n(0),
        });
        cb.stop();
        cb.push(Op::AddImm {
            d: n(4),
            imm: 1,
            a: n(3),
        });
        cb.stop();
        // Simulated virtual dispatch cost: an indirect branch to a
        // per-method block would be realistic; Itanium compilers devirtualize
        // rarely, so model the branch-register move + dependent add.
        cb.push(Op::Shladd {
            d: n(5),
            a: n(4),
            count: 1,
            b: n(4),
        });
        cb.stop();
        cb.push(Op::Add {
            d: n(10),
            a: n(10),
            b: n(5),
        });
        cb.stop();
    });
}

/// vcall_mono: two monomorphic indirect call sites whose targets sit
/// exactly 16 KiB apart, so they alias in a direct-mapped lookup table
/// indexed by `(eip >> 2) & 4095` (slots repeat every 16 KiB). A
/// single shared slot thrashes between them — every call is a
/// dispatcher round-trip — while per-site inline caches and a 2-way
/// table hold both predictions indefinitely.
fn vcall_mono_ia32(a: &mut Asm, iters: u32) {
    let start = a.label();
    a.jmp(start);
    let fa = a.here();
    a.alu_ri(AluOp::Add, EDI, 3);
    a.ret();
    // Pad the second method to the aliasing distance.
    while a.here() < fa + 16384 {
        a.nop();
    }
    let fb = a.here();
    a.alu_ri(AluOp::Add, EDI, 5);
    a.ret();
    a.bind(start);
    a.mov_ri(ECX, iters as i32);
    a.mov_ri(EDI, 0);
    a.mov_ri(EBX, fa as i32);
    a.mov_ri(EDX, fb as i32);
    let top = a.label();
    a.bind(top);
    a.call_r(EBX); // site 1: always method A
    a.call_r(EDX); // site 2: always method B
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(RESULT), EDI);
    a.hlt();
}

fn vcall_mono_native(cb: &mut CodeBuilder, iters: u32) {
    // A native compiler devirtualizes the monomorphic calls outright.
    native_loop(cb, iters, |cb| {
        cb.push(Op::AddImm {
            d: n(10),
            imm: 8,
            a: n(10),
        });
        cb.stop();
    });
}

/// callret: nested direct call/ret chains in a hot loop. Every `ret`
/// exercises the return-address path, and a trace selector that stops
/// at calls fragments the whole loop body; one that follows calls and
/// predicts returns covers it with a single hot trace.
fn callret_ia32(a: &mut Asm, iters: u32) {
    let f1 = a.label();
    let f2 = a.label();
    let f3 = a.label();
    let start = a.label();
    a.jmp(start);
    a.bind(f3);
    a.alu_ri(AluOp::Add, EDI, 1);
    a.ret();
    a.bind(f2);
    a.alu_ri(AluOp::Add, EDI, 2);
    a.call(f3);
    a.alu_ri(AluOp::Xor, EDI, 0x11);
    a.ret();
    a.bind(f1);
    a.alu_ri(AluOp::Add, EDI, 4);
    a.call(f2);
    a.alu_ri(AluOp::Xor, EDI, 0x22);
    a.ret();
    a.bind(start);
    a.mov_ri(ECX, iters as i32);
    a.mov_ri(EDI, 0);
    let top = a.label();
    a.bind(top);
    a.call(f1);
    a.call(f1);
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(RESULT), EDI);
    a.hlt();
}

fn callret_native(cb: &mut CodeBuilder, iters: u32) {
    // Per f1 call: edi = ((edi + 4 + 2 + 1) ^ 0x11) ^ 0x22, twice.
    native_loop(cb, iters, |cb| {
        for _ in 0..2 {
            cb.push(Op::AddImm {
                d: n(10),
                imm: 7,
                a: n(10),
            });
            cb.stop();
            cb.push(Op::XorImm {
                d: n(10),
                imm: 0x11,
                a: n(10),
            });
            cb.stop();
            cb.push(Op::XorImm {
                d: n(10),
                imm: 0x22,
                a: n(10),
            });
            cb.stop();
        }
    });
}

/// gcc: a large, flat code footprint — many blocks, each executed a few
/// times (translation overhead and dispatch dominate).
fn gcc_ia32(a: &mut Asm, iters: u32) {
    a.mov_ri(ECX, iters as i32);
    a.mov_ri(EDI, 0);
    a.mov_ri(ESI, DATA as i32);
    let top = a.label();
    a.bind(top);
    // 64 distinct small blocks, chained with jumps.
    let blocks: Vec<_> = (0..64).map(|_| a.label()).collect();
    for (k, l) in blocks.iter().enumerate() {
        if k == 0 {
            a.jmp(*l);
        }
        a.bind(*l);
        a.alu_rm(AluOp::Add, EDI, Addr::base_disp(ESI, (k as i32) * 8));
        a.alu_ri(AluOp::Xor, EDI, k as i32 + 1);
        if k + 1 < blocks.len() {
            a.jmp(blocks[k + 1]);
        }
    }
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(RESULT), EDI);
    a.hlt();
}

fn gcc_native(cb: &mut CodeBuilder, iters: u32) {
    native_loop(cb, iters, |cb| {
        for k in 0..64u16 {
            cb.push(Op::AddImm {
                d: n(3),
                imm: (k as i64) * 8,
                a: n(1),
            });
            cb.stop();
            cb.push(Op::Ld {
                sz: 4,
                d: n(4),
                addr: n(3),
                spec: false,
            });
            cb.stop();
            cb.push(Op::Add {
                d: n(10),
                a: n(10),
                b: n(4),
            });
            cb.push(Op::XorImm {
                d: n(10),
                imm: k as i64 + 1,
                a: n(10),
            });
            cb.stop();
        }
        cb.push(Op::Zxt {
            d: n(10),
            a: n(10),
            size: 4,
        });
        cb.stop();
    });
}

/// A generic array-crunching kernel used (with different mixes) for the
/// remaining benchmarks.
fn array_ia32(mul_every: u32, store_every: u32) -> fn(&mut Asm, u32) {
    // Specialize via small const tables to keep fn-pointer signatures.
    match (mul_every, store_every) {
        (2, 4) => |a: &mut Asm, iters: u32| array_body(a, iters, 2, 4),
        (3, 2) => |a: &mut Asm, iters: u32| array_body(a, iters, 3, 2),
        (1, 8) => |a: &mut Asm, iters: u32| array_body(a, iters, 1, 8),
        (4, 3) => |a: &mut Asm, iters: u32| array_body(a, iters, 4, 3),
        (5, 5) => |a: &mut Asm, iters: u32| array_body(a, iters, 5, 5),
        (2, 2) => |a: &mut Asm, iters: u32| array_body(a, iters, 2, 2),
        _ => |a: &mut Asm, iters: u32| array_body(a, iters, 3, 3),
    }
}

fn array_body(a: &mut Asm, iters: u32, mul_every: u32, store_every: u32) {
    ia32_loop(a, iters, |a| {
        a.mov_rr(EAX, ECX);
        a.alu_ri(AluOp::And, EAX, 0x3FFF);
        a.mov_load(EBX, Addr::base_index(ESI, EAX, 4, 0));
        a.alu_rr(AluOp::Add, EDI, EBX);
        a.mov_rr(EDX, ECX);
        a.alu_ri(AluOp::And, EDX, mul_every as i32 - 1);
        let no_mul = a.label();
        a.jcc(Cond::Ne, no_mul);
        a.imul_rr(EDI, EBX);
        a.bind(no_mul);
        a.mov_rr(EDX, ECX);
        a.alu_ri(AluOp::And, EDX, store_every as i32 - 1);
        let no_store = a.label();
        a.jcc(Cond::Ne, no_store);
        a.mov_store(Addr::base_index(ESI, EAX, 4, 4), EDI);
        a.bind(no_store);
    });
}

fn array_native(cb: &mut CodeBuilder, iters: u32) {
    native_loop(cb, iters, |cb| {
        cb.push(Op::AndImm {
            d: n(3),
            imm: 0x3FFF,
            a: n(0),
        });
        cb.stop();
        cb.push(Op::Shladd {
            d: n(3),
            a: n(3),
            count: 2,
            b: n(1),
        });
        cb.stop();
        cb.push(Op::Ld {
            sz: 4,
            d: n(4),
            addr: n(3),
            spec: false,
        });
        cb.stop();
        cb.push(Op::Add {
            d: n(10),
            a: n(10),
            b: n(4),
        });
        cb.push(Op::AddImm {
            d: n(5),
            imm: 4,
            a: n(3),
        });
        cb.stop();
        cb.push(Op::St {
            sz: 4,
            addr: n(5),
            val: n(10),
        });
        cb.stop();
    });
}

/// The misalignment-heavy kernel: 4-byte accesses at odd addresses.
fn misalign_ia32(a: &mut Asm, iters: u32) {
    a.mov_ri(ECX, iters as i32);
    a.mov_ri(EDI, 0);
    a.mov_ri(ESI, (DATA + 1) as i32);
    let top = a.label();
    a.bind(top);
    a.alu_rm(AluOp::Add, EDI, Addr::base(ESI));
    a.mov_store(Addr::base_disp(ESI, 8), EDI);
    a.alu_ri(AluOp::Add, ESI, 16); // stays odd
    a.mov_rr(EAX, ESI);
    a.alu_ri(AluOp::And, EAX, 0x7FFF);
    a.lea(ESI, Addr::base_disp(EAX, (DATA + 1) as i32));
    a.alu_ri(AluOp::And, ESI, !0xF); // realign the wandering base...
    a.alu_ri(AluOp::Or, ESI, 1); // ...but keep it odd
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(RESULT), EDI);
    a.hlt();
}

fn misalign_native(cb: &mut CodeBuilder, iters: u32) {
    // Native (compiled) code would keep its data aligned.
    array_native(cb, iters);
}

fn wl(
    name: &'static str,
    build_ia32: fn(&mut Asm, u32),
    build_native: fn(&mut CodeBuilder, u32),
    scale: u32,
) -> Workload {
    Workload {
        name,
        build_ia32,
        build_native,
        data: rnd_data,
        scale,
        native_fraction: 0.0,
        idle_fraction: 0.0,
        writable_code: false,
        uses_os: false,
    }
}

/// All twelve Figure-5 kernels.
pub fn all() -> Vec<Workload> {
    let mut v = vec![
        wl("gzip", gzip_ia32, gzip_native, 60_000),
        wl("vpr", array_ia32(2, 4), array_native, 40_000),
        wl("gcc", gcc_ia32, gcc_native, 700),
        {
            let mut w = wl("mcf", mcf_ia32, mcf_native, 120_000);
            w.data = mcf_data;
            w
        },
        wl("crafty", crafty_ia32, crafty_native, 40_000),
        wl("parser", array_ia32(3, 2), array_native, 40_000),
        wl("eon", eon_ia32, eon_native, 30_000),
        wl("perlbmk", array_ia32(1, 8), array_native, 35_000),
        wl("gap", array_ia32(4, 3), array_native, 40_000),
        wl("vortex", array_ia32(5, 5), array_native, 35_000),
        wl("bzip2", array_ia32(2, 2), array_native, 50_000),
        wl("twolf", array_ia32(3, 3), array_native, 45_000),
    ];
    // Distinguish the array-based kernels a little more through scale.
    v.iter_mut().for_each(|_| {});
    v
}

/// The 1236 s → 133 s misalignment experiment workload.
pub fn misalign_heavy() -> Workload {
    wl("misalign", misalign_ia32, misalign_native, 40_000)
}

/// The call-heavy kernels of the indirect-pressure experiment: the
/// Figure-5 eon dispatcher plus two kernels aimed at the indirect
/// control-transfer machinery (lookup-table aliasing and deep direct
/// call/ret nesting).
pub fn indirect() -> Vec<Workload> {
    vec![
        wl("eon", eon_ia32, eon_native, 30_000),
        wl("vcall_mono", vcall_mono_ia32, vcall_mono_native, 30_000),
        wl("callret", callret_ia32, callret_native, 30_000),
    ]
}

/// `fp` re-uses these helpers.
pub(crate) use native_loop as shared_native_loop;
pub(crate) use {n as ngr, np as npr};
#[allow(unused)]
fn _keep_imports() {
    let _ = (F0, R0, nf(0), ia32_loop as fn(_, _, fn(&mut Asm)));
}
