//! # Workloads — the synthetic evaluation suite
//!
//! The paper evaluates on SPEC CPU2000 and Sysmark 2002 binaries, which
//! are proprietary; this crate substitutes synthetic kernels, one per
//! Figure-5 benchmark, each tuned to the characteristic that drove its
//! published score (gcc's code footprint, mcf's pointer chasing and
//! 32-bit data advantage, eon's indirect calls, crafty's variable
//! shifts, …). Every kernel has **two backends**:
//!
//! * an IA-32 machine-code binary (built with [`ia32::asm::Asm`]) that
//!   runs under the Execution Layer or the IA-32 cycle model, and
//! * a native Itanium version (built with [`ipf::asm::CodeBuilder`])
//!   standing in for "compiled with the Intel compiler for Itanium" —
//!   the Figure-5 baseline.
//!
//! The two backends compute the same function of the same data buffers;
//! the IA-32 side is differentially verified against the reference
//! interpreter in this crate's tests.

pub mod fp;
pub mod harness;
pub mod hostile;
pub mod int;
pub mod sysmark;

use ia32::asm::Asm;
use ipf::asm::CodeBuilder;

/// Base address of the workload data buffer.
pub const DATA: u32 = 0x50_0000;
/// Size of the data buffer.
pub const DATA_SIZE: u32 = 0x4_0000;
/// Result slot (both backends store their checksum here).
pub const RESULT: u32 = DATA + DATA_SIZE - 16;

/// One dual-backend workload.
pub struct Workload {
    /// Benchmark-style name (matches the paper's Figure 5 where
    /// applicable).
    pub name: &'static str,
    /// Builds the IA-32 version (must end with `HLT`).
    pub build_ia32: fn(&mut Asm, u32),
    /// Builds the native Itanium version (must end with a branch to
    /// [`harness::NATIVE_EXIT`]).
    pub build_native: fn(&mut CodeBuilder, u32),
    /// Initial data segments.
    pub data: fn() -> Vec<(u32, Vec<u8>)>,
    /// Iteration scale for "full" runs.
    pub scale: u32,
    /// Fraction of time spent in the OS kernel/drivers (Sysmark model;
    /// executed natively on the paper's system).
    pub native_fraction: f64,
    /// Idle-time fraction (Sysmark model).
    pub idle_fraction: f64,
    /// The image's code segment stays writable at load time (guest-JIT
    /// kernels that patch their own instructions need this).
    pub writable_code: bool,
    /// The kernel makes system calls (signal registration, sigreturn):
    /// it needs an OS personality behind it and cannot run under the
    /// bare [`harness::run_ia32_hw`] interpreter loop.
    pub uses_os: bool,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Workload({})", self.name)
    }
}

/// Deterministic pseudo-random bytes for data buffers.
pub(crate) fn prng_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out.push(x as u8);
    }
    out
}

/// All SPEC-INT-like kernels in the paper's Figure 5 order.
pub fn spec_int() -> Vec<Workload> {
    int::all()
}

/// FP/SIMD kernels (the CPU2000-FP-like composite of Figure 8).
pub fn spec_fp() -> Vec<Workload> {
    fp::all()
}

/// The Sysmark-2002-like mixed workload.
pub fn sysmark() -> Workload {
    sysmark::workload()
}

/// The misalignment-heavy workload (the 1236 s -> 133 s experiment).
pub fn misalign_heavy() -> Workload {
    int::misalign_heavy()
}

/// Call-heavy kernels for the indirect control-transfer experiment
/// (eon plus two kernels aimed at the acceleration machinery).
pub fn indirect_kernels() -> Vec<Workload> {
    int::indirect()
}

/// Hostile-guest kernels: asynchronous signal storms, a guest-side JIT
/// rewriting its own code page, and nested signal handlers. All need an
/// OS personality (they register handlers via `int 0x80`).
pub fn hostile_kernels() -> Vec<Workload> {
    hostile::all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_enumerate() {
        assert_eq!(spec_int().len(), 12, "one kernel per Figure-5 bar");
        assert!(spec_fp().len() >= 4);
    }

    #[test]
    fn prng_deterministic() {
        assert_eq!(prng_bytes(42, 16), prng_bytes(42, 16));
        assert_ne!(prng_bytes(42, 16), prng_bytes(43, 16));
    }
}
