//! The Sysmark-2002-like workload: a large, evenly-spread code footprint
//! with significant OS-kernel (natively executed) and idle time —
//! "much bigger [applications whose] execution is spread more evenly"
//! (paper §6, Figure 7).

use crate::int::shared_native_loop;
use crate::{prng_bytes, Workload, DATA, RESULT};
use ia32::asm::Asm;
use ia32::inst::*;
use ia32::regs::*;
use ia32::Cond;
use ipf::asm::CodeBuilder;
use ipf::inst::Op;

fn data() -> Vec<(u32, Vec<u8>)> {
    vec![(DATA, prng_bytes(0xD0C, 0x1_0000))]
}

/// Many phases, each with its own code (large footprint); phases run few
/// times each except one moderately-hot core.
fn sysmark_ia32(a: &mut Asm, iters: u32) {
    a.mov_ri(EDI, 0);
    a.mov_ri(ESI, DATA as i32);
    // 40 "features", each a chain of 12 distinct blocks, run a handful
    // of times; one "document reflow" loop that is genuinely hot.
    for feature in 0..40 {
        a.mov_ri(ECX, 6);
        let top = a.label();
        a.bind(top);
        for blk in 0..12 {
            let l = a.label();
            a.jmp(l);
            a.bind(l);
            let off = ((feature * 12 + blk) * 16) & 0xFFF;
            a.alu_rm(AluOp::Add, EDI, Addr::base_disp(ESI, off));
            a.alu_ri(AluOp::Xor, EDI, feature * 31 + blk);
        }
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
    }
    // The hot core.
    a.mov_ri(ECX, iters as i32);
    let hot = a.label();
    a.bind(hot);
    a.mov_rr(EAX, ECX);
    a.alu_ri(AluOp::And, EAX, 0xFFF);
    a.alu_rm(AluOp::Add, EDI, Addr::base_index(ESI, EAX, 4, 0));
    a.shift_i(ShiftOp::Shl, EDI, 1);
    a.alu_ri(AluOp::Xor, EDI, 0x9E37);
    a.dec(ECX);
    a.jcc(Cond::Ne, hot);
    a.mov_store(Addr::abs(RESULT), EDI);
    a.hlt();
}

fn sysmark_native(cb: &mut CodeBuilder, iters: u32) {
    shared_native_loop(cb, iters, |cb| {
        use crate::int::ngr;
        cb.push(Op::AndImm {
            d: ngr(3),
            imm: 0xFFF,
            a: ngr(0),
        });
        cb.stop();
        cb.push(Op::Shladd {
            d: ngr(3),
            a: ngr(3),
            count: 2,
            b: ngr(1),
        });
        cb.stop();
        cb.push(Op::Ld {
            sz: 4,
            d: ngr(4),
            addr: ngr(3),
            spec: false,
        });
        cb.stop();
        cb.push(Op::Add {
            d: ngr(10),
            a: ngr(10),
            b: ngr(4),
        });
        cb.stop();
        cb.push(Op::ShlImm {
            d: ngr(10),
            a: ngr(10),
            count: 1,
        });
        cb.stop();
        cb.push(Op::XorImm {
            d: ngr(10),
            imm: 0x9E37,
            a: ngr(10),
        });
        cb.stop();
    });
}

/// The Sysmark-like workload: 22% kernel/driver (native) time and 15%
/// idle, per the paper's Figure 7 observations.
pub fn workload() -> Workload {
    Workload {
        name: "sysmark",
        build_ia32: sysmark_ia32,
        build_native: sysmark_native,
        data,
        scale: 30_000,
        native_fraction: 0.22,
        idle_fraction: 0.15,
        writable_code: false,
        uses_os: false,
    }
}
