//! The BTLib/BTGeneric split (paper §3, Figure 3): the version
//! handshake, system services flowing down through the BTOS API, and
//! exceptions flowing back up.
//!
//! ```text
//! cargo run --release --example os_interaction
//! ```

use btgeneric::btos::{BtOs, ExceptionOutcome, GuestException, SyscallOutcome, Version};
use btgeneric::engine::Outcome;
use btlib::{sys, Process};
use ia32::asm::{Asm, Image};
use ia32::cpu::Cpu;
use ia32::mem::GuestMem;
use ia32::regs::{EAX, EBX};

/// A custom OS personality: logs every BTOS interaction (Figure 3).
struct TracingOs {
    inner: btlib::SimOs,
    events: Vec<String>,
}

impl BtOs for TracingOs {
    fn version(&self) -> Version {
        self.inner.version()
    }

    fn syscall(&mut self, cpu: &mut Cpu, mem: &mut GuestMem) -> SyscallOutcome {
        self.events
            .push(format!("C) syscall {} delegated to the OS", cpu.gpr[0]));
        self.inner.syscall(cpu, mem)
    }

    fn exception(&mut self, exc: GuestException, cpu: &Cpu) -> ExceptionOutcome {
        self.events.push(format!(
            "D) exception {exc:?} at eip={:#x}: BTGeneric reconstructed the IA-32 state",
            cpu.eip
        ));
        self.inner.exception(exc, cpu)
    }

    fn log(&mut self, msg: &str) {
        self.events.push(format!("log: {msg}"));
    }
}

fn main() {
    let mut a = Asm::new(0x40_0000);
    a.mov_ri(EAX, sys::GETTICK as i32);
    a.int(0x80);
    a.mov_load(EBX, ia32::inst::Addr::abs(0x10)); // page fault
    a.hlt();
    let image = Image::from_asm(&a);

    let os = TracingOs {
        inner: btlib::SimOs::new(),
        events: vec!["A) BTLib loaded BTGeneric; versions negotiated".into()],
    };
    let mut p = Process::launch(&image, os).expect("handshake");
    println!("negotiated BTOS version: {}", p.btos_version);
    let outcome = p.run(1_000_000);
    p.os.events.push(format!("process ended: {outcome:?}"));
    for e in &p.os.events {
        println!("{e}");
    }
    assert!(matches!(outcome, Outcome::Terminated { .. }));
}
