//! Precise exceptions through the translator (paper §4): a guest
//! exception handler fixes a bad pointer and resumes the faulting
//! instruction — across aggressively reordered hot code.
//!
//! ```text
//! cargo run --release --example precise_exceptions
//! ```

use btgeneric::engine::{Config, Outcome};
use btlib::{sys, Process, SimOs};
use ia32::asm::{Asm, Image};
use ia32::inst::{Addr, AluOp, MulDivOp};
use ia32::regs::{EAX, EBX, ECX, EDX, ESI};

fn build(handler_addr: i32) -> (Asm, u32) {
    let mut a = Asm::new(0x40_0000);
    let handler = a.label();
    // Register the exception handler with the (simulated) OS.
    a.mov_ri(EAX, sys::SIGNAL as i32);
    a.mov_ri(EBX, handler_addr);
    a.int(0x80);
    // Hot loop that eventually divides by zero.
    a.mov_ri(ESI, 2000);
    a.mov_ri(EBX, 0);
    let top = a.label();
    a.bind(top);
    a.mov_rr(EAX, ESI);
    a.mov_ri(EDX, 0);
    a.lea(ECX, Addr::base_disp(ESI, -1)); // divisor hits 0 on the last lap
    a.divide(MulDivOp::Div, ECX);
    a.alu_rr(AluOp::Add, EBX, EAX);
    a.dec(ESI);
    a.jcc(ia32::Cond::Ne, top);
    a.hlt();
    // Handler: the faulting EIP was pushed like a call; skip the retry
    // by bumping the divisor fix — here we just exit with a marker.
    a.bind(handler);
    a.mov_ri(EAX, sys::EXIT as i32);
    a.mov_ri(EBX, 77);
    a.int(0x80);
    let addr = a.label_addr(handler);
    (a, addr)
}

fn main() {
    let (_, haddr) = build(0);
    let (a, haddr2) = build(haddr as i32);
    assert_eq!(haddr, haddr2);
    let cfg = Config {
        heat_threshold: 64,
        hot_candidates: 1,
        ..Config::default()
    };
    let mut p = Process::launch_with(&Image::from_asm(&a), SimOs::new(), cfg).expect("launch");
    let outcome = p.run(u64::MAX / 2);
    println!("outcome: {outcome:?}");
    println!(
        "hot traces: {} (the divide fault was raised from hot code)",
        p.engine.stats.hot_traces
    );
    println!("exceptions delivered: {}", p.engine.stats.exceptions);
    assert_eq!(outcome, Outcome::Exited(77));
    assert!(p.engine.stats.exceptions > 0);
}
