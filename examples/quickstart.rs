//! Quickstart: run an IA-32 guest program under the IA-32 Execution
//! Layer and watch the two-phase translation happen.
//!
//! Computes sum(1..=65535) in a guest loop (it fits 32 bits), converts
//! it to decimal in guest code, and writes it to the captured stdout.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use btgeneric::engine::{Config, Outcome};
use btlib::{Process, SimOs};
use ia32::asm::{Asm, Image};
use ia32::inst::AluOp;
use ia32::regs::{EAX, EBX, ECX, EDX, ESP};

fn main() {
    // A guest program, assembled to real IA-32 machine code: compute
    // the sum of 1..=65535 and print it via write(1, buf, len).
    let mut a = Asm::new(0x40_0000);
    a.mov_ri(EAX, 0);
    a.mov_ri(ECX, 65_535);
    let top = a.label();
    a.bind(top);
    a.alu_rr(AluOp::Add, EAX, ECX);
    a.dec(ECX);
    a.jcc(ia32::Cond::Ne, top);
    // Convert EAX to decimal digits on the stack (simple itoa loop).
    a.mov_ri(EBX, 10);
    a.alu_ri(AluOp::Sub, ESP, 16);
    a.mov_rr(ECX, ESP);
    a.alu_ri(AluOp::Add, ECX, 15);
    a.inst(ia32::Inst::Mov {
        size: ia32::Size::B,
        dst: ia32::inst::Rm::Mem(ia32::inst::Addr::base(ECX)),
        src: ia32::inst::RmI::Imm(0x0A), // '\n'
    });
    let digits = a.label();
    a.bind(digits);
    a.mov_ri(EDX, 0);
    a.divide(ia32::inst::MulDivOp::Div, EBX);
    a.alu_ri(AluOp::Add, EDX, '0' as i32);
    a.dec(ECX);
    a.inst(ia32::Inst::Mov {
        size: ia32::Size::B,
        dst: ia32::inst::Rm::Mem(ia32::inst::Addr::base(ECX)),
        src: ia32::inst::RmI::Reg(EDX),
    });
    a.cmp_ri(EAX, 0);
    a.jcc(ia32::Cond::Ne, digits);
    // write(1, ecx, bytes-to-end-of-buffer)
    a.mov_rr(EDX, ESP);
    a.alu_ri(AluOp::Add, EDX, 16);
    a.alu_rr(AluOp::Sub, EDX, ECX);
    a.mov_ri(EAX, btlib::sys::WRITE as i32);
    a.mov_ri(EBX, 1);
    a.int(0x80);
    a.mov_ri(EAX, btlib::sys::EXIT as i32);
    a.mov_ri(EBX, 0);
    a.int(0x80);

    // Launch under the Execution Layer: BTLib loads the image, checks
    // the BTOS version handshake, and BTGeneric translates on demand.
    let image = Image::from_asm(&a);
    let cfg = Config {
        heat_threshold: 1024,
        ..Config::default()
    };
    let mut process = Process::launch_with(&image, SimOs::new(), cfg).expect("launch");
    let outcome = process.run(u64::MAX / 2);

    println!("guest stdout: {}", process.os.stdout_string().trim());
    println!("outcome:      {outcome:?}");
    assert_eq!(outcome, Outcome::Exited(0));
    assert_eq!(process.os.stdout_string().trim(), "2147450880");

    let s = &process.engine.stats;
    println!();
    println!("translator statistics (the paper's Figure 2 in action):");
    println!("  cold blocks translated: {}", s.cold_blocks);
    println!("  hot traces generated:   {}", s.hot_traces);
    println!("  heat events:            {}", s.heat_events);
    println!("  syscalls serviced:      {}", s.syscalls);
    let dist = btgeneric::stats::TimeDistribution::from_region_cycles(
        &process.engine.machine.region_cycles,
    );
    let (hot, cold, ovh, other, _, _) = dist.percentages();
    println!(
        "  time split: hot {hot:.1}% / cold {cold:.1}% / overhead {ovh:.1}% / other {other:.1}%"
    );
}
