//! Watch the two-phase pipeline: the same loop run cold-only vs with
//! hot promotion, showing the cold instrumentation paying off in the
//! hot phase (paper §2 and the "hot code is 3x better" observation).
//!
//! ```text
//! cargo run --release --example two_phase
//! ```

use btgeneric::engine::{Config, Outcome};
use btgeneric::stats::TimeDistribution;
use btlib::{Process, SimOs};
use ia32::asm::{Asm, Image};
use ia32::inst::{Addr, AluOp, ShiftOp};
use ia32::regs::{EAX, EBX, ECX, EDI, ESI};

fn build() -> Image {
    let mut a = Asm::new(0x40_0000);
    a.mov_ri(ESI, 0x50_0000);
    a.mov_ri(ECX, 200_000);
    a.mov_ri(EDI, 0);
    let top = a.label();
    a.bind(top);
    a.mov_rr(EAX, ECX);
    a.alu_ri(AluOp::And, EAX, 0xFFF);
    a.mov_load(EBX, Addr::base_index(ESI, EAX, 4, 0));
    a.alu_rr(AluOp::Add, EDI, EBX);
    a.shift_i(ShiftOp::Shl, EDI, 1);
    a.alu_ri(AluOp::Xor, EDI, 0x55);
    a.mov_store(Addr::base_index(ESI, EAX, 4, 0), EDI);
    a.dec(ECX);
    a.jcc(ia32::Cond::Ne, top);
    a.hlt();
    Image::from_asm(&a).with_bss(0x50_0000, 0x1_0000)
}

fn run(cfg: Config) -> (u64, TimeDistribution, u64, String) {
    let mut p = Process::launch_with(&build(), SimOs::new(), cfg).expect("launch");
    match p.run(u64::MAX / 2) {
        Outcome::Halted(_) => {}
        other => panic!("unexpected outcome {other:?}"),
    }
    let dist = TimeDistribution::from_region_cycles(&p.engine.machine.region_cycles);
    // Show the translated code of the hottest block.
    let dump = p
        .engine
        .blocks()
        .iter()
        .find(|b| b.kind == btgeneric::engine::BlockKind::Hot)
        .map(|b| p.engine.disassemble_block(b.id))
        .unwrap_or_default();
    (dist.total(), dist, p.engine.stats.hot_traces, dump)
}

fn main() {
    let cold_only = Config {
        enable_hot: false,
        ..Config::default()
    };
    let two_phase = Config {
        heat_threshold: 1024,
        hot_candidates: 1,
        ..Config::default()
    };
    let (cold_cycles, _, _, _) = run(cold_only);
    let (hot_cycles, dist, traces, dump) = run(two_phase);
    let (h, c, o, ot, _, _) = dist.percentages();
    println!("cold-only:  {cold_cycles} simulated cycles");
    println!("two-phase:  {hot_cycles} simulated cycles ({traces} hot traces)");
    println!("speedup:    {:.2}x", cold_cycles as f64 / hot_cycles as f64);
    println!("time split: hot {h:.1}% / cold {c:.1}% / overhead {o:.1}% / other {ot:.1}%");
    println!();
    println!("hot trace (first 12 bundles):");
    for line in dump.lines().take(13) {
        println!("{line}");
    }
    assert!(hot_cycles < cold_cycles);
}
