//! # IA-32 Execution Layer — a two-phase dynamic binary translator
//!
//! A full reproduction of *"IA-32 Execution Layer: a two-phase dynamic
//! translator designed to support IA-32 applications on Itanium-based
//! systems"* (MICRO 2003) as a Rust workspace:
//!
//! * [`ia32`] — the guest architecture: instruction model, real
//!   machine-code encoder/decoder, assembler, guest memory, reference
//!   interpreter (the correctness oracle), and a Xeon-like cycle model.
//! * [`ipf`] — the host architecture: an Itanium-like EPIC machine with
//!   bundles, predication, speculation, and a dispersal cycle model.
//! * [`btgeneric`] — the paper's contribution: the OS-independent
//!   two-phase translator (cold templates + hot trace optimizer, precise
//!   exceptions through commit points, FP/MMX/SSE speculation, and
//!   three-stage misalignment handling).
//! * [`btlib`] — the thin OS abstraction layer (BTOS API + simulated
//!   Linux personality).
//! * [`workloads`] — dual-backend synthetic SPEC/Sysmark-like kernels
//!   for the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```rust
//! use btlib::{Process, SimOs};
//! use ia32::asm::{Asm, Image};
//! use ia32::inst::AluOp;
//! use ia32::regs::{EAX, EBX, ECX};
//!
//! // Guest program: sum 1..=100, then exit(EBX = sum low byte).
//! let mut a = Asm::new(0x40_0000);
//! a.mov_ri(EBX, 0);
//! a.mov_ri(ECX, 100);
//! let top = a.label();
//! a.bind(top);
//! a.alu_rr(AluOp::Add, EBX, ECX);
//! a.dec(ECX);
//! a.jcc(ia32::Cond::Ne, top);
//! a.alu_ri(AluOp::And, EBX, 0xFF);
//! a.mov_ri(EAX, btlib::sys::EXIT as i32);
//! a.int(0x80);
//!
//! let mut p = Process::launch(&Image::from_asm(&a), SimOs::new()).unwrap();
//! assert_eq!(p.run(10_000_000), btgeneric::engine::Outcome::Exited(5050 & 0xFF));
//! ```

pub use btgeneric;
pub use btlib;
pub use ia32;
pub use ipf;
pub use workloads;

pub mod testkit;
