//! Differential-testing helpers: run a guest image under both the
//! reference interpreter and the translator, and compare outcomes.

use btgeneric::engine::{Config, Outcome};
use btlib::{Process, SimOs};
use ia32::asm::Image;
use ia32::cpu::Cpu;
use ia32::fpu::FpReg;
use ia32::interp::{Event, Interp};
use ia32::mem::GuestMem;
use ia32::regs::EAX;

/// Result of one execution side.
#[derive(Debug)]
pub struct RunResult {
    /// Final architectural state.
    pub cpu: Cpu,
    /// How the run ended.
    pub end: RunEnd,
    /// Captured stdout.
    pub stdout: String,
    /// Final guest memory (for region comparisons).
    pub mem: GuestMem,
}

/// How a run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunEnd {
    /// `HLT`.
    Halt,
    /// `exit(status)`.
    Exit(i32),
    /// Terminated on an unhandled exception at `eip`.
    Fault(u32),
    /// Budget exhausted.
    Limit,
}

/// Runs `image` under the reference interpreter with a [`SimOs`].
pub fn run_interp(image: &Image, max_steps: u64) -> RunResult {
    let mut mem = GuestMem::new();
    let cpu = image.load(&mut mem);
    let mut os = SimOs::new();
    let mut interp = Interp::new();
    interp.cpu = cpu;
    let mut steps = 0u64;
    let end = loop {
        if steps >= max_steps {
            break RunEnd::Limit;
        }
        match interp.step(&mut mem) {
            Ok(Event::Continue) => {}
            Ok(Event::Halt) => break RunEnd::Halt,
            Ok(Event::Syscall { vector }) => {
                assert_eq!(vector, 0x80, "unexpected vector in test");
                use btgeneric::btos::{BtOs, SyscallOutcome};
                match os.syscall(&mut interp.cpu, &mut mem) {
                    SyscallOutcome::Continue => {}
                    SyscallOutcome::Exit(c) => break RunEnd::Exit(c),
                }
            }
            Err(trap) => {
                // Match the engine's delivery policy: no handler ->
                // terminate; handler -> push EIP and continue there.
                match os.handler {
                    None => break RunEnd::Fault(trap.eip),
                    Some(h) => {
                        let esp = interp.cpu.esp().wrapping_sub(4);
                        if mem.write(esp as u64, 4, interp.cpu.eip as u64).is_err() {
                            break RunEnd::Fault(trap.eip);
                        }
                        interp.cpu.set_esp(esp);
                        interp.cpu.eip = h;
                    }
                }
            }
        }
        steps += 1;
    };
    RunResult {
        cpu: interp.cpu.clone(),
        end,
        stdout: os.stdout_string(),
        mem,
    }
}

/// Runs `image` under the translator with the given configuration.
pub fn run_translated(image: &Image, cfg: Config, max_slots: u64) -> (RunResult, Process<SimOs>) {
    let mut p = Process::launch_with(image, SimOs::new(), cfg).expect("launch");
    let outcome = p.run(max_slots);
    let (cpu, end) = match outcome {
        Outcome::Halted(cpu) => (*cpu, RunEnd::Halt),
        Outcome::Exited(c) => {
            // Final state after exit: reconstruct from the machine.
            let cpu = btgeneric::state::machine_to_cpu(&p.engine.machine, 0);
            (cpu, RunEnd::Exit(c))
        }
        Outcome::Terminated { cpu, .. } => {
            let eip = cpu.eip;
            (*cpu, RunEnd::Fault(eip))
        }
        Outcome::InstLimit => (
            btgeneric::state::machine_to_cpu(&p.engine.machine, 0),
            RunEnd::Limit,
        ),
    };
    let stdout = p.os.stdout_string();
    // Guest memory stays inside the process; callers compare through it.
    let result = RunResult {
        cpu,
        end,
        stdout,
        mem: GuestMem::new(),
    };
    (result, p)
}

/// Cold-only configuration (hot phase disabled).
pub fn cold_config() -> Config {
    Config {
        enable_hot: false,
        ..Config::default()
    }
}

/// Hot-aggressive configuration (low heating threshold so short tests
/// reach the hot phase).
pub fn hot_config() -> Config {
    Config {
        heat_threshold: 16,
        hot_candidates: 1,
        ..Config::default()
    }
}

/// Asserts that two CPU states are architecturally equivalent.
///
/// EFLAGS are compared exactly (at clean exits the translator
/// materializes all live-out flags). x87 registers are compared through
/// their value semantics: FP-mode registers by value (NaN == NaN), MMX
/// values by bits; only tag-valid registers are compared.
///
/// # Panics
///
/// Panics with a diagnostic on any mismatch.
pub fn assert_cpu_equiv(oracle: &Cpu, translated: &Cpu, what: &str) {
    assert_eq!(oracle.gpr, translated.gpr, "{what}: GPR mismatch");
    assert_eq!(
        oracle.eflags & (ia32::flags::STATUS | ia32::flags::DF),
        translated.eflags & (ia32::flags::STATUS | ia32::flags::DF),
        "{what}: EFLAGS mismatch ({:#x} vs {:#x})",
        oracle.eflags,
        translated.eflags
    );
    // The x87 stack is compared *logically* (relative to TOS): the
    // translator's TOS-mismatch fix rotates the physical registers,
    // which is architecturally unobservable in our subset (no FNSTSW).
    assert_eq!(
        oracle.fpu.depth(),
        translated.fpu.depth(),
        "{what}: FP stack depth mismatch"
    );
    assert_eq!(
        oracle.fpu.mmx_mode, translated.fpu.mmx_mode,
        "{what}: FP/MMX mode mismatch"
    );
    for k in 0..8u8 {
        assert_eq!(
            oracle.fpu.is_valid(k),
            translated.fpu.is_valid(k),
            "{what}: ST({k}) validity mismatch"
        );
        if !oracle.fpu.is_valid(k) {
            continue;
        }
        if oracle.fpu.mmx_mode {
            // MMX registers are physically indexed; in MMX mode TOS is
            // forced to 0 on both sides, so physical == logical.
            let (a, b) = (
                oracle.fpu.mmx_read(oracle.fpu.phys(k)),
                translated.fpu.mmx_read(translated.fpu.phys(k)),
            );
            assert_eq!(a, b, "{what}: MMX register ST({k}) mismatch");
        } else {
            let (x, y) = (oracle.fpu.st(k).unwrap(), translated.fpu.st(k).unwrap());
            assert!(
                x == y || (x.is_nan() && y.is_nan()),
                "{what}: ST({k}) mismatch: {x} vs {y}"
            );
        }
    }
    assert_eq!(oracle.xmm, translated.xmm, "{what}: XMM mismatch");
    let _ = FpReg::F(0.0);
}

/// Runs an image both ways, asserts equivalent outcomes/state/stdout,
/// and compares the given guest memory regions byte for byte.
pub fn differential(
    image: &Image,
    cfg: Config,
    regions: &[(u32, u32)],
    what: &str,
) -> Process<SimOs> {
    let oracle = run_interp(image, 50_000_000);
    let (trans, p) = run_translated(image, cfg, 400_000_000);
    assert_eq!(oracle.end, trans.end, "{what}: outcome mismatch");
    assert_eq!(oracle.stdout, trans.stdout, "{what}: stdout mismatch");
    match oracle.end {
        RunEnd::Halt | RunEnd::Fault(_) => {
            assert_cpu_equiv(&oracle.cpu, &trans.cpu, what);
            if oracle.end != RunEnd::Halt {
                assert_eq!(oracle.cpu.eip, trans.cpu.eip, "{what}: faulting EIP");
            }
        }
        RunEnd::Exit(_) => {
            // Registers other than the syscall result are still
            // comparable.
            assert_eq!(
                oracle.cpu.gpr[EAX.num() as usize],
                trans.cpu.gpr[EAX.num() as usize],
                "{what}: EAX at exit"
            );
        }
        RunEnd::Limit => panic!("{what}: oracle hit the step limit"),
    }
    for &(addr, len) in regions {
        for off in 0..len {
            let a = oracle.mem.read((addr + off) as u64, 1).ok();
            let b = p.engine.mem.read((addr + off) as u64, 1).ok();
            assert_eq!(a, b, "{what}: memory mismatch at {:#x}", addr + off);
        }
    }
    p
}
