//! Fault injection and the degradation ladder: the engine must survive
//! corrupted translations, escaped speculation, misalignment residue,
//! OS allocation refusals, and transient syscall failures — degrading
//! (demote, blacklist, evict, interpret) instead of panicking, while
//! the guest-visible result stays oracle-correct.

use btgeneric::chaos::{self, FaultKind, FaultPlan};
use btgeneric::engine::{BlockKind, Config, Outcome};
use btlib::{Process, SimOs, SimOsFaults};
use ia32::asm::{Asm, Image};
use ia32::inst::{Addr, AluOp};
use ia32::regs::*;
use ia32::Cond;
use ia32el::testkit::{run_interp, RunEnd};
use ipf::inst::Op;
use ipf::regs::{Br, Gr, R0};

const DATA: u32 = 0x50_0000;
const ENTRY: u32 = 0x40_0000;

fn image(f: impl FnOnce(&mut Asm)) -> Image {
    let mut a = Asm::new(ENTRY);
    f(&mut a);
    Image::from_asm(&a).with_bss(DATA, 0x1_0000)
}

/// A hot-friendly checksum loop ending in a store + HLT.
fn loop_image() -> Image {
    image(|a| {
        a.mov_ri(EAX, 0);
        a.mov_ri(ECX, 400);
        let top = a.label();
        a.bind(top);
        a.alu_ri(AluOp::Add, EAX, 7);
        a.alu_ri(AluOp::Xor, EAX, 0x5A5A);
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        a.mov_store(Addr::abs(DATA), EAX);
        a.hlt();
    })
}

/// An outer loop over a chain of `n` tiny blocks: lots of distinct
/// blocks (translation traffic) that all get warm (hot traffic).
fn chain_image(n: u32, iters: i32) -> Image {
    image(|a| {
        a.mov_ri(EAX, 0);
        a.mov_ri(ECX, iters);
        let top = a.label();
        a.bind(top);
        for k in 0..n {
            let next = a.label();
            a.alu_ri(AluOp::Add, EAX, k as i32 + 1);
            a.alu_ri(AluOp::Xor, EAX, 0x1111);
            a.jmp(next);
            a.bind(next);
        }
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        a.mov_store(Addr::abs(DATA), EAX);
        a.hlt();
    })
}

/// Interpreter-oracle result for an image that halts with its checksum
/// at `DATA`.
fn oracle(img: &Image) -> u64 {
    let r = run_interp(img, 50_000_000);
    assert_eq!(r.end, RunEnd::Halt, "oracle must halt");
    r.mem.read(DATA as u64, 4).unwrap()
}

fn guest_result(p: &Process<SimOs>) -> u64 {
    p.engine.mem.read(DATA as u64, 4).unwrap()
}

/// Latest non-evicted block registered at `eip`.
fn live_block_at(p: &Process<SimOs>, eip: u32) -> u32 {
    p.engine
        .blocks()
        .iter()
        .rev()
        .find(|b| b.eip == eip && !b.evicted)
        .expect("live block at eip")
        .id
}

/// Regression for the old `panic!("branch to non-stub address")`: a
/// corrupted entry bundle branches into the void; the ladder must
/// convert that into evict-and-retranslate, not a crash.
#[test]
fn corrupted_block_recovers_instead_of_panicking() {
    let img = loop_image();
    let want = oracle(&img);
    let cfg = Config {
        heat_threshold: 16,
        hot_candidates: 1,
        ..Config::default()
    };
    let mut p = Process::launch_with(&img, SimOs::new(), cfg).expect("launch");
    assert!(matches!(p.run(100_000_000), Outcome::Halted(_)));
    assert_eq!(guest_result(&p), want);

    let id = live_block_at(&p, ENTRY);
    assert!(chaos::corrupt_block(&mut p.engine, id));
    let before = p.engine.stats.ladder_recoveries;
    assert!(matches!(p.run(100_000_000), Outcome::Halted(_)));
    assert_eq!(guest_result(&p), want, "recovered run must match oracle");
    assert!(
        p.engine.stats.ladder_recoveries > before,
        "recovery must go through the ladder"
    );
}

/// Regression for the old NaT-consumption `panic!`: patch an installed
/// block so a speculative load's NaT escapes into a non-speculative
/// consumer. The ladder retries, then evicts and retranslates.
#[test]
fn nat_consumption_recovers_instead_of_panicking() {
    let img = loop_image();
    let want = oracle(&img);
    let cfg = Config {
        enable_hot: false,
        ..Config::default()
    };
    let mut p = Process::launch_with(&img, SimOs::new(), cfg).expect("launch");
    assert!(matches!(p.run(100_000_000), Outcome::Halted(_)));

    let id = live_block_at(&p, ENTRY);
    let entry = p.engine.block(id).range.0;
    // ld8.s r48 = [r0]  -> address 0 is unmapped, deferred to a NaT
    // mov   b6  = r48   -> non-speculative consumption: MachFault
    p.engine.machine.arena.patch_slot(
        entry,
        0,
        Op::Ld {
            sz: 8,
            d: Gr(48),
            addr: R0,
            spec: true,
        },
    );
    p.engine.machine.arena.patch_slot(
        entry,
        1,
        Op::MovToBr {
            b: Br(6),
            r: Gr(48),
        },
    );

    let before = p.engine.stats.ladder_recoveries;
    assert!(matches!(p.run(100_000_000), Outcome::Halted(_)));
    assert_eq!(guest_result(&p), want, "recovered run must match oracle");
    assert!(p.engine.stats.ladder_recoveries > before);
}

/// Regression for the old misalignment-residue `panic!`: a misalignment
/// fault whose slot does not hold an emulable memory op (the
/// arena-corruption case) walks the ladder instead of dying.
#[test]
fn misalign_residue_recovers_instead_of_panicking() {
    let img = loop_image();
    let want = oracle(&img);
    let cfg = Config {
        enable_hot: false,
        ..Config::default()
    };
    let mut p = Process::launch_with(&img, SimOs::new(), cfg).expect("launch");
    assert!(matches!(p.run(100_000_000), Outcome::Halted(_)));

    let id = live_block_at(&p, ENTRY);
    assert!(
        chaos::misalign_residue_probe(&mut p.engine, &mut p.os, id),
        "residue fault must be absorbed by the ladder"
    );
    assert!(matches!(p.run(100_000_000), Outcome::Halted(_)));
    assert_eq!(guest_result(&p), want, "recovered run must match oracle");
}

/// Verify-on-dispatch: per-extent checksums catch a corrupted block at
/// the dispatch boundary and evict it before it executes.
#[test]
fn verify_on_dispatch_catches_corruption() {
    let img = loop_image();
    let want = oracle(&img);
    let cfg = Config {
        enable_hot: false,
        verify_on_dispatch: true,
        ..Config::default()
    };
    let mut p = Process::launch_with(&img, SimOs::new(), cfg).expect("launch");
    assert!(matches!(p.run(100_000_000), Outcome::Halted(_)));

    let id = live_block_at(&p, ENTRY);
    assert!(chaos::corrupt_block(&mut p.engine, id));
    assert!(matches!(p.run(100_000_000), Outcome::Halted(_)));
    assert_eq!(guest_result(&p), want);
    assert!(
        p.engine.stats.integrity_evictions > 0,
        "the checksum must have caught the corruption before execution"
    );
}

/// The acceptance-criterion ladder policy at engine level: a
/// blacklisted EIP is not re-promoted while its backoff runs, and *is*
/// re-promoted after it expires.
#[test]
fn blacklisted_block_repromotes_only_after_backoff() {
    let img = loop_image();
    let cfg = Config {
        heat_threshold: 16,
        hot_candidates: 1,
        ..Config::default()
    };

    // Which EIPs go hot organically?
    let mut pa = Process::launch_with(&img, SimOs::new(), cfg.clone()).expect("launch");
    assert!(matches!(pa.run(100_000_000), Outcome::Halted(_)));
    let hot_eips: Vec<u32> = pa
        .engine
        .blocks()
        .iter()
        .filter(|b| b.kind == BlockKind::Hot && !b.evicted)
        .map(|b| b.eip)
        .collect();
    assert!(!hot_eips.is_empty(), "the loop must heat up");

    // Backoff far beyond the run length: promotion stays blocked.
    let blocked_cfg = Config {
        blacklist_backoff_cycles: 1 << 40,
        ..cfg.clone()
    };
    let mut pb = Process::launch_with(&img, SimOs::new(), blocked_cfg).expect("launch");
    for &e in &hot_eips {
        pb.engine.blacklist_mut().strike(e, 0);
    }
    assert!(matches!(pb.run(100_000_000), Outcome::Halted(_)));
    assert!(
        !pb.engine
            .blocks()
            .iter()
            .any(|b| b.kind == BlockKind::Hot && hot_eips.contains(&b.eip)),
        "blacklisted EIPs must not re-promote inside the backoff window"
    );
    assert!(
        pb.engine.stats.blacklist_hits > 0,
        "heat must have been suppressed"
    );

    // Short backoff: the same strikes expire mid-run and the loop goes
    // hot again.
    let expiring_cfg = Config {
        blacklist_backoff_cycles: 2_000,
        ..cfg
    };
    let mut pc = Process::launch_with(&img, SimOs::new(), expiring_cfg).expect("launch");
    for &e in &hot_eips {
        pc.engine.blacklist_mut().strike(e, 0);
    }
    assert!(matches!(pc.run(100_000_000), Outcome::Halted(_)));
    assert!(
        pc.engine
            .blocks()
            .iter()
            .any(|b| b.kind == BlockKind::Hot && hot_eips.contains(&b.eip)),
        "the blacklist must release the EIP once its backoff expires"
    );
}

/// Injected translation failures ride the `InterpStep` safety net and
/// still produce the oracle result.
#[test]
fn translate_faults_fall_back_to_interp() {
    let img = chain_image(20, 10);
    let want = oracle(&img);
    let cfg = Config {
        enable_hot: false,
        ..Config::default()
    };
    let mut p = Process::launch_with(&img, SimOs::new(), cfg).expect("launch");
    p.engine.chaos = Some(FaultPlan::new(9).with(FaultKind::Translate, 1000, 8));
    assert!(matches!(p.run(200_000_000), Outcome::Halted(_)));
    assert_eq!(guest_result(&p), want);
    assert_eq!(p.engine.stats.faults_injected, 8, "budget must drain");
    assert_eq!(p.engine.stats.interp_fallbacks, 8);
    assert!(
        p.engine.stats.interp_steps > 0,
        "the net must have caught them"
    );
    assert!(
        p.engine.stats.interp_cycles > 0,
        "fallback time must be charged"
    );
}

/// The OS refusing translator-side allocations (ENOMEM) degrades the
/// engine — shared overflow profile slots — without changing the guest
/// result.
#[test]
fn os_allocation_failure_degrades_gracefully() {
    let img = chain_image(300, 2);
    let want = oracle(&img);
    let os = SimOs::with_faults(SimOsFaults {
        fail_allocs: 1_000,
        fail_syscalls: 0,
    });
    let cfg = Config {
        enable_hot: false,
        ..Config::default()
    };
    let mut p = Process::launch_with(&img, os, cfg).expect("launch");
    assert!(matches!(p.run(200_000_000), Outcome::Halted(_)));
    assert_eq!(guest_result(&p), want);
    assert!(
        p.os.denied_allocs > 0,
        "the 300-block chain must outgrow the mapped profile region"
    );
    assert_eq!(p.engine.stats.os_alloc_failures, p.os.denied_allocs);
}

/// A guest that retries on EAGAIN survives transient syscall failures.
#[test]
fn guest_retries_transient_syscall_failures() {
    let mut a = Asm::new(ENTRY);
    a.mov_ri(EAX, 0x0A6B6F); // "ok\n"
    a.alu_ri(AluOp::Sub, ESP, 4);
    a.mov_store(Addr::base(ESP), EAX);
    let retry = a.label();
    a.bind(retry);
    a.mov_ri(EAX, 4); // write(1, esp, 3)
    a.mov_ri(EBX, 1);
    a.mov_rr(ECX, ESP);
    a.mov_ri(EDX, 3);
    a.int(0x80);
    a.cmp_ri(EAX, 0);
    a.jcc(Cond::S, retry); // negative result (EAGAIN): try again
    a.hlt();
    let img = Image::from_asm(&a);

    let os = SimOs::with_faults(SimOsFaults {
        fail_allocs: 0,
        fail_syscalls: 2,
    });
    let mut p = Process::launch_with(&img, os, Config::default()).expect("launch");
    assert!(matches!(p.run(10_000_000), Outcome::Halted(_)));
    assert_eq!(p.os.denied_syscalls, 2, "both armed refusals must fire");
    assert_eq!(
        p.os.stdout_string(),
        "ok\n",
        "the retried write must land once"
    );
}

/// Same workload, same `FaultPlan` seed: byte-identical statistics and
/// cycle counts. The harness is exactly reproducible.
#[test]
fn chaos_runs_are_deterministic() {
    let img = chain_image(20, 50);
    let run = |seed: u64| {
        let plan = FaultPlan::storm(seed);
        let os = SimOs::with_faults(SimOsFaults {
            fail_allocs: plan.os_alloc_failures,
            fail_syscalls: 0,
        });
        let cfg = Config {
            heat_threshold: 16,
            hot_candidates: 1,
            verify_on_dispatch: true,
            hot_session_budget: 100_000,
            ..Config::default()
        };
        let mut p = Process::launch_with(&img, os, cfg).expect("launch");
        p.engine.chaos = Some(plan);
        assert!(matches!(p.run(200_000_000), Outcome::Halted(_)));
        (
            p.engine.stats.clone(),
            p.engine.machine.cycles,
            guest_result(&p),
        )
    };
    let (s1, c1, r1) = run(1234);
    let (s2, c2, r2) = run(1234);
    assert!(s1.faults_injected > 0, "the storm must actually fire");
    assert_eq!(s1, s2, "statistics must be byte-identical");
    assert_eq!(c1, c2, "cycle counts must be byte-identical");
    assert_eq!(r1, r2);
    assert_eq!(r1, oracle(&img), "and still oracle-correct");
}

/// The indirect-acceleration structures (inline caches, shadow stack,
/// 2-way table, demotion counters) must not introduce nondeterminism:
/// a call/ret-heavy workload under a fault storm produces byte-identical
/// `Stats` — including every indirect counter — on a re-run with the
/// same seed, and never diverges from the oracle. Three fixed seeds.
#[test]
fn indirect_accel_chaos_is_deterministic_and_oracle_correct() {
    let img = image(|a| {
        a.mov_ri(ECX, 300);
        a.mov_ri(EAX, 0);
        let top = a.label();
        a.bind(top);
        // Alternate between two indirect-call targets, then return.
        a.mov_rr(EBX, ECX);
        a.alu_ri(AluOp::And, EBX, 1);
        a.inst(ia32::Inst::ImulRmImm {
            dst: EBX,
            src: ia32::inst::Rm::Reg(EBX),
            imm: 0x100,
        });
        a.alu_ri(AluOp::Add, EBX, 0x40_1000);
        a.call_r(EBX);
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        a.mov_store(Addr::abs(DATA), EAX);
        a.hlt();
        while a.here() < 0x40_1000 {
            a.nop();
        }
        a.alu_ri(AluOp::Add, EAX, 3);
        a.ret();
        while a.here() < 0x40_1100 {
            a.nop();
        }
        a.alu_ri(AluOp::Add, EAX, 7);
        a.ret();
    });
    let want = oracle(&img);
    for seed in [11u64, 22, 33] {
        let run = || {
            let plan = FaultPlan::storm(seed);
            let os = SimOs::with_faults(SimOsFaults {
                fail_allocs: plan.os_alloc_failures,
                fail_syscalls: 0,
            });
            let cfg = Config {
                heat_threshold: 16,
                hot_candidates: 2,
                verify_on_dispatch: true,
                hot_session_budget: 100_000,
                ..Config::default()
            };
            let mut p = Process::launch_with(&img, os, cfg).expect("launch");
            p.engine.chaos = Some(plan);
            assert!(matches!(p.run(200_000_000), Outcome::Halted(_)));
            p.engine.collect_indirect_stats();
            (
                p.engine.stats.clone(),
                p.engine.machine.cycles,
                guest_result(&p),
            )
        };
        let (s1, c1, r1) = run();
        let (s2, c2, r2) = run();
        assert_eq!(s1, s2, "seed {seed}: statistics must be byte-identical");
        assert_eq!(c1, c2, "seed {seed}: cycle counts must be byte-identical");
        assert_eq!(r1, r2, "seed {seed}: results must match across runs");
        assert_eq!(r1, want, "seed {seed}: diverged from the oracle");
        assert!(
            s1.shadow_hits + s1.ic_hits + s1.indirect_misses > 0,
            "seed {seed}: the indirect machinery must have been exercised"
        );
    }
}
