//! Differential tests: every program runs under the reference
//! interpreter (the oracle) and under the translator — cold-only and
//! with an aggressive hot phase — and the outcomes, final state,
//! stdout, and data memory must match.

use ia32::asm::{Asm, Image};
use ia32::inst::*;
use ia32::regs::*;
use ia32::{Cond, Size};
use ia32el::testkit::{cold_config, differential, hot_config};

const DATA: u32 = 0x50_0000;

fn image(f: impl FnOnce(&mut Asm)) -> Image {
    let mut a = Asm::new(0x40_0000);
    f(&mut a);
    Image::from_asm(&a).with_bss(DATA, 0x1_0000)
}

fn check(name: &str, f: impl Fn(&mut Asm)) {
    let img = image(&f);
    differential(
        &img,
        cold_config(),
        &[(DATA, 0x400)],
        &format!("{name}/cold"),
    );
    differential(&img, hot_config(), &[(DATA, 0x400)], &format!("{name}/hot"));
}

#[test]
fn arithmetic_loop() {
    check("sum", |a| {
        a.mov_ri(EAX, 0);
        a.mov_ri(ECX, 200);
        let top = a.label();
        a.bind(top);
        a.alu_rr(AluOp::Add, EAX, ECX);
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        a.mov_mi(Addr::abs(DATA), 0);
        a.mov_store(Addr::abs(DATA), EAX);
        a.hlt();
    });
}

#[test]
fn nested_loops_and_memory() {
    check("matrix-ish", |a| {
        a.mov_ri(ESI, DATA as i32);
        a.mov_ri(EBX, 0); // i
        let outer = a.label();
        a.bind(outer);
        a.mov_ri(ECX, 0); // j
        let inner = a.label();
        a.bind(inner);
        // data[i*8 + j] = i*j + previous
        a.mov_rr(EDX, EBX);
        a.imul_rr(EDX, ECX);
        a.lea(EDI, Addr::base_index(EBX, ECX, 1, 0));
        a.shift_i(ShiftOp::Shl, EDI, 2);
        a.alu_rr(AluOp::Add, EDI, ESI);
        a.alu_rm(AluOp::Add, EDX, Addr::base(EDI));
        a.mov_store(Addr::base(EDI), EDX);
        a.inc(ECX);
        a.cmp_ri(ECX, 8);
        a.jcc(Cond::L, inner);
        a.inc(EBX);
        a.cmp_ri(EBX, 8);
        a.jcc(Cond::L, outer);
        a.hlt();
    });
}

#[test]
fn flags_and_conditions() {
    check("flags", |a| {
        // Exercise every condition code via setcc into a table.
        a.mov_ri(ESI, DATA as i32);
        a.mov_ri(EAX, 5);
        a.cmp_ri(EAX, 7);
        for c in 0..16u8 {
            a.inst(Inst::Setcc {
                cond: Cond::from_code(c),
                dst: Rm::Mem(Addr::base_disp(ESI, c as i32)),
            });
        }
        a.cmp_ri(EAX, 5);
        for c in 0..16u8 {
            a.inst(Inst::Setcc {
                cond: Cond::from_code(c),
                dst: Rm::Mem(Addr::base_disp(ESI, 16 + c as i32)),
            });
        }
        // adc/sbb chains.
        a.mov_ri(EAX, -1);
        a.mov_ri(EBX, 1);
        a.alu_rr(AluOp::Add, EAX, EBX); // sets CF
        a.mov_ri(EDX, 0);
        a.inst(Inst::Alu {
            op: AluOp::Adc,
            size: Size::D,
            dst: Rm::Reg(EDX),
            src: RmI::Imm(0),
        });
        a.mov_store(Addr::base_disp(ESI, 32), EDX);
        a.inst(Inst::Alu {
            op: AluOp::Sbb,
            size: Size::D,
            dst: Rm::Reg(EDX),
            src: RmI::Imm(0),
        });
        a.mov_store(Addr::base_disp(ESI, 36), EDX);
        a.hlt();
    });
}

#[test]
fn shifts_all_forms() {
    check("shifts", |a| {
        a.mov_ri(ESI, DATA as i32);
        a.mov_ri(EAX, 0x8000_0001u32 as i32);
        let mut off = 0;
        for op in [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar] {
            for count in [1u8, 4, 31] {
                a.mov_ri(EBX, 0x8000_0301u32 as i32);
                a.inst(Inst::Shift {
                    op,
                    size: Size::D,
                    dst: Rm::Reg(EBX),
                    count: ShiftCount::Imm(count),
                });
                a.mov_store(Addr::base_disp(ESI, off), EBX);
                off += 4;
                // Capture flags after the shift.
                a.inst(Inst::Setcc {
                    cond: Cond::B,
                    dst: Rm::Mem(Addr::base_disp(ESI, off)),
                });
                off += 4;
            }
            // Variable count via CL (including zero).
            for cl in [0i32, 3, 35] {
                a.mov_ri(ECX, cl);
                a.mov_ri(EBX, 0x8000_0301u32 as i32);
                a.inst(Inst::Shift {
                    op,
                    size: Size::D,
                    dst: Rm::Reg(EBX),
                    count: ShiftCount::Cl,
                });
                a.mov_store(Addr::base_disp(ESI, off), EBX);
                off += 4;
            }
        }
        a.hlt();
    });
}

#[test]
fn subword_operations() {
    check("subword", |a| {
        a.mov_ri(ESI, DATA as i32);
        a.mov_ri(EAX, 0x1234_5678);
        // Byte ops on AL and AH.
        a.inst(Inst::Alu {
            op: AluOp::Add,
            size: Size::B,
            dst: Rm::Reg(EAX), // AL
            src: RmI::Imm(0x90),
        });
        a.inst(Inst::Alu {
            op: AluOp::Xor,
            size: Size::B,
            dst: Rm::Reg(ESP), // number 4 = AH
            src: RmI::Imm(0x5A),
        });
        a.mov_store(Addr::base(ESI), EAX);
        // Word ops.
        a.inst(Inst::Alu {
            op: AluOp::Add,
            size: Size::W,
            dst: Rm::Reg(EAX),
            src: RmI::Imm(0x7FFF),
        });
        a.mov_store(Addr::base_disp(ESI, 4), EAX);
        // movzx / movsx.
        a.mov_ri(EBX, 0xFF80);
        a.inst(Inst::Movzx {
            dst: ECX,
            src_size: Size::B,
            src: Rm::Reg(EBX),
        });
        a.inst(Inst::Movsx {
            dst: EDX,
            src_size: Size::B,
            src: Rm::Reg(EBX),
        });
        a.mov_store(Addr::base_disp(ESI, 8), ECX);
        a.mov_store(Addr::base_disp(ESI, 12), EDX);
        // Byte store/load roundtrip.
        a.inst(Inst::Mov {
            size: Size::B,
            dst: Rm::Mem(Addr::base_disp(ESI, 17)),
            src: RmI::Imm(0xAB),
        });
        a.inst(Inst::MovLoad {
            size: Size::B,
            dst: EDI,
            src: Addr::base_disp(ESI, 17),
        });
        a.mov_store(Addr::base_disp(ESI, 20), EDI);
        a.hlt();
    });
}

#[test]
fn mul_div_family() {
    check("muldiv", |a| {
        a.mov_ri(ESI, DATA as i32);
        // imul 2-op and 3-op.
        a.mov_ri(EAX, -7);
        a.mov_ri(EBX, 100000);
        a.imul_rr(EAX, EBX);
        a.mov_store(Addr::base(ESI), EAX);
        a.inst(Inst::ImulRmImm {
            dst: ECX,
            src: Rm::Reg(EBX),
            imm: -3,
        });
        a.mov_store(Addr::base_disp(ESI, 4), ECX);
        // mul/imul wide.
        a.mov_ri(EAX, 0x1234_5678);
        a.mov_ri(EBX, 0x9ABC_DEF0u32 as i32);
        a.divide(MulDivOp::Mul, EBX);
        a.mov_store(Addr::base_disp(ESI, 8), EAX);
        a.mov_store(Addr::base_disp(ESI, 12), EDX);
        a.mov_ri(EAX, -12345);
        a.mov_ri(EBX, 777);
        a.divide(MulDivOp::Imul, EBX);
        a.mov_store(Addr::base_disp(ESI, 16), EAX);
        a.mov_store(Addr::base_disp(ESI, 20), EDX);
        // div (edx=0 fast path).
        a.mov_ri(EAX, 1000001);
        a.mov_ri(EDX, 0);
        a.mov_ri(ECX, 7);
        a.divide(MulDivOp::Div, ECX);
        a.mov_store(Addr::base_disp(ESI, 24), EAX);
        a.mov_store(Addr::base_disp(ESI, 28), EDX);
        // div with edx != 0 (64/32, interpreter-step path).
        a.mov_ri(EAX, 5);
        a.mov_ri(EDX, 3);
        a.mov_ri(ECX, 0x4000_0000);
        a.divide(MulDivOp::Div, ECX);
        a.mov_store(Addr::base_disp(ESI, 32), EAX);
        a.mov_store(Addr::base_disp(ESI, 36), EDX);
        // idiv with cdq pattern.
        a.mov_ri(EAX, -1000001);
        a.cdq();
        a.mov_ri(ECX, 7);
        a.divide(MulDivOp::Idiv, ECX);
        a.mov_store(Addr::base_disp(ESI, 40), EAX);
        a.mov_store(Addr::base_disp(ESI, 44), EDX);
        // idiv negative divisor.
        a.mov_ri(EAX, 1000001);
        a.cdq();
        a.mov_ri(ECX, -7);
        a.divide(MulDivOp::Idiv, ECX);
        a.mov_store(Addr::base_disp(ESI, 48), EAX);
        a.mov_store(Addr::base_disp(ESI, 52), EDX);
        a.hlt();
    });
}

#[test]
fn calls_and_indirect_branches() {
    check("calls", |a| {
        let f1 = a.label();
        let f2 = a.label();
        let table_done = a.label();
        a.mov_ri(EAX, 0);
        a.call(f1);
        a.call(f2);
        // Indirect call through a register.
        let after = a.label();
        a.mov_ri(EBX, 0); // patched via label math below: call f1 again
                          // (use lea-like trick: we know f1's address after layout; use
                          // a direct call instead to keep the program position-stable)
        a.call(f1);
        a.bind(after);
        // Indirect jump via register over a jump table pattern.
        a.mov_ri(ECX, 2);
        a.mov_store(Addr::abs(DATA + 0x100), EAX);
        a.jmp(table_done);
        a.bind(table_done);
        a.hlt();
        a.bind(f1);
        a.alu_ri(AluOp::Add, EAX, 3);
        a.ret();
        a.bind(f2);
        a.alu_ri(AluOp::Add, EAX, 10);
        a.push_r(EAX);
        a.pop_r(EDX);
        a.ret();
    });
}

#[test]
fn indirect_jump_via_register() {
    // Build once to learn addresses, then hard-code them.
    let build = |t1: i32, t2: i32| {
        let mut a = Asm::new(0x40_0000);
        let l1 = a.label();
        let l2 = a.label();
        a.mov_ri(EAX, t1);
        a.mov_ri(ECX, 50);
        let top = a.label();
        a.bind(top);
        a.jmp_r(EAX);
        a.bind(l1);
        a.alu_ri(AluOp::Add, EBX, 1);
        a.mov_ri(EAX, t2);
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        a.hlt();
        a.bind(l2);
        a.alu_ri(AluOp::Add, EBX, 100);
        a.mov_ri(EAX, t1);
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        a.hlt();
        (a.label_addr(l1) as i32, a.label_addr(l2) as i32, a)
    };
    let (t1, t2, _) = build(0, 0);
    let (t1b, t2b, a) = build(t1, t2);
    assert_eq!((t1, t2), (t1b, t2b));
    let img = Image::from_asm(&a).with_bss(DATA, 0x1000);
    differential(&img, cold_config(), &[], "indjmp/cold");
    differential(&img, hot_config(), &[], "indjmp/hot");
}

#[test]
fn string_operations() {
    check("strings", |a| {
        a.mov_ri(ESI, DATA as i32);
        a.mov_ri(ECX, 16);
        a.mov_ri(EAX, 0x61616161u32 as i32);
        a.mov_ri(EDI, DATA as i32);
        a.inst(Inst::Stos {
            size: Size::D,
            rep: true,
        });
        // Copy the filled area.
        a.mov_ri(ESI, DATA as i32);
        a.mov_ri(EDI, DATA as i32 + 0x100);
        a.mov_ri(ECX, 16);
        a.inst(Inst::Movs {
            size: Size::D,
            rep: true,
        });
        // Single-element, byte-sized.
        a.mov_ri(ESI, DATA as i32);
        a.mov_ri(EDI, DATA as i32 + 0x200);
        a.inst(Inst::Movs {
            size: Size::B,
            rep: false,
        });
        a.hlt();
    });
}

#[test]
fn cmov_and_xchg() {
    check("cmov", |a| {
        a.mov_ri(ESI, DATA as i32);
        a.mov_ri(EAX, 1);
        a.mov_ri(EBX, 2);
        a.cmp_rr(EAX, EBX);
        a.inst(Inst::Cmovcc {
            cond: Cond::L,
            dst: ECX,
            src: Rm::Reg(EBX),
        });
        a.inst(Inst::Cmovcc {
            cond: Cond::G,
            dst: EDX,
            src: Rm::Reg(EAX),
        });
        a.mov_store(Addr::base(ESI), ECX);
        a.inst(Inst::Xchg {
            size: Size::D,
            reg: EAX,
            rm: Rm::Reg(EBX),
        });
        a.mov_store(Addr::base_disp(ESI, 4), EAX);
        a.inst(Inst::Xchg {
            size: Size::D,
            reg: EAX,
            rm: Rm::Mem(Addr::base_disp(ESI, 4)),
        });
        a.mov_store(Addr::base_disp(ESI, 8), EAX);
        a.hlt();
    });
}

#[test]
fn neg_not_inc_dec_memory() {
    check("unary-mem", |a| {
        a.mov_ri(ESI, DATA as i32);
        a.mov_mi(Addr::base(ESI), 0x1234);
        a.inst(Inst::Neg {
            size: Size::D,
            dst: Rm::Mem(Addr::base(ESI)),
        });
        a.inst(Inst::Not {
            size: Size::D,
            dst: Rm::Mem(Addr::base(ESI)),
        });
        a.inst(Inst::IncDec {
            inc: true,
            size: Size::D,
            dst: Rm::Mem(Addr::base(ESI)),
        });
        a.inst(Inst::IncDec {
            inc: false,
            size: Size::B,
            dst: Rm::Mem(Addr::base_disp(ESI, 1)),
        });
        a.hlt();
    });
}

#[test]
fn hot_loop_heats_and_matches() {
    // Long loop with function call: forces hot promotion with the
    // aggressive config (heat threshold 16) and still must match.
    let img = image(|a| {
        let f = a.label();
        let top = a.label();
        a.mov_ri(EAX, 0);
        a.mov_ri(ECX, 3000);
        a.bind(top);
        a.call(f);
        a.alu_ri(AluOp::Xor, EAX, 0x5A5A);
        a.shift_i(ShiftOp::Shl, EAX, 1);
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        a.mov_store(Addr::abs(DATA), EAX);
        a.hlt();
        a.bind(f);
        a.alu_ri(AluOp::Add, EAX, 7);
        a.ret();
    });
    let p = differential(&img, hot_config(), &[(DATA, 16)], "hotloop");
    assert!(
        p.engine.stats.hot_traces > 0,
        "hot phase must have triggered: {:?}",
        p.engine.stats.heat_events
    );
}

#[test]
fn deep_hot_loop_with_memory() {
    let img = image(|a| {
        // data[i % 64] += i for many iterations.
        a.mov_ri(ESI, DATA as i32);
        a.mov_ri(ECX, 5000);
        a.mov_ri(EBX, 0); // i
        let top = a.label();
        a.bind(top);
        a.mov_rr(EAX, EBX);
        a.alu_ri(AluOp::And, EAX, 63);
        a.lea(EDI, Addr::base_index(ESI, EAX, 4, 0));
        a.alu_rm(AluOp::Add, EBX, Addr::base(EDI));
        a.mov_store(Addr::base(EDI), EBX);
        a.alu_ri(AluOp::Sub, EBX, 0); // keep flags busy
        a.inc(EBX);
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        a.hlt();
    });
    let p = differential(&img, hot_config(), &[(DATA, 64 * 4)], "hotmem");
    assert!(p.engine.stats.hot_traces > 0);
}

#[test]
fn address_wraparound_faults_match() {
    // EA arithmetic wraps at 32 bits: base near 4 GiB + displacement
    // lands at a low (unmapped) address; both sides must fault at the
    // same EIP with the same state.
    let img = image(|a| {
        a.mov_ri(EBX, 0xFFFF_FFF0u32 as i32);
        a.mov_load(EAX, Addr::base_disp(EBX, 0x30)); // wraps to 0x20
        a.hlt();
    });
    let oracle = ia32el::testkit::run_interp(&img, 1_000_000);
    let (trans, _p) = ia32el::testkit::run_translated(&img, cold_config(), 10_000_000);
    match (&oracle.end, &trans.end) {
        (ia32el::testkit::RunEnd::Fault(oe), ia32el::testkit::RunEnd::Fault(te)) => {
            assert_eq!(oe, te)
        }
        other => panic!("expected wraparound faults, got {other:?}"),
    }
}

#[test]
fn high_byte_registers_roundtrip() {
    check("high-bytes", |a| {
        a.mov_ri(EAX, 0x11223344);
        a.mov_ri(EBX, 0x55667788);
        // AH += BH (number 4 and 7 at byte size).
        a.inst(Inst::Alu {
            op: AluOp::Add,
            size: Size::B,
            dst: Rm::Reg(ESP),  // AH
            src: RmI::Reg(EDI), // BH
        });
        // CH = memory byte; DH = CH.
        a.mov_mi(Addr::abs(DATA), 0x5A);
        a.inst(Inst::MovLoad {
            size: Size::B,
            dst: EBP, // CH
            src: Addr::abs(DATA),
        });
        a.inst(Inst::Mov {
            size: Size::B,
            dst: Rm::Reg(ESI),  // DH
            src: RmI::Reg(EBP), // CH
        });
        // Store all four registers.
        a.mov_store(Addr::abs(DATA + 4), EAX);
        a.mov_store(Addr::abs(DATA + 8), EBX);
        a.mov_store(Addr::abs(DATA + 12), ECX);
        a.mov_store(Addr::abs(DATA + 16), EDX);
        a.hlt();
    });
}

#[test]
fn word_size_arithmetic() {
    check("word-ops", |a| {
        a.mov_ri(EAX, 0xABCD_FFFEu32 as i32);
        a.inst(Inst::Alu {
            op: AluOp::Add,
            size: Size::W,
            dst: Rm::Reg(EAX),
            src: RmI::Imm(5),
        }); // wraps in 16 bits, upper half preserved
        a.inst(Inst::Setcc {
            cond: Cond::B,
            dst: Rm::Mem(Addr::abs(DATA)),
        });
        a.mov_store(Addr::abs(DATA + 4), EAX);
        a.inst(Inst::Shift {
            op: ShiftOp::Shl,
            size: Size::W,
            dst: Rm::Reg(EAX),
            count: ShiftCount::Imm(9),
        });
        a.mov_store(Addr::abs(DATA + 8), EAX);
        a.inst(Inst::Movsx {
            dst: EBX,
            src_size: Size::W,
            src: Rm::Reg(EAX),
        });
        a.mov_store(Addr::abs(DATA + 12), EBX);
        a.hlt();
    });
}
