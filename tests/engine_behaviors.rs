//! Engine-level behaviors: translation-cache garbage collection, hot
//! side-exit accounting, the indirect-branch lookup table under
//! collisions, and instruction-budget handling.

use btgeneric::chaos::FaultPlan;
use btgeneric::engine::Outcome;
use btgeneric::stats::TimeDistribution;
use btlib::{Process, SimOs};
use ia32::asm::{Asm, Image};
use ia32::inst::AluOp;
use ia32::regs::*;
use ia32::Cond;
use ia32el::testkit::{cold_config, differential, hot_config};

const DATA: u32 = 0x50_0000;

fn image(f: impl FnOnce(&mut Asm)) -> Image {
    let mut a = Asm::new(0x40_0000);
    f(&mut a);
    Image::from_asm(&a).with_bss(DATA, 0x1_0000)
}

/// A chain of many small blocks looping 40 times — enough churn to
/// overflow a tiny translation cache many times over.
fn churn_image() -> Image {
    image(|a| {
        a.mov_ri(EAX, 0);
        a.mov_ri(ECX, 40);
        let top = a.label();
        a.bind(top);
        // A chain of small blocks (each jmp ends a block).
        for k in 0..24 {
            let l = a.label();
            a.alu_ri(AluOp::Add, EAX, k + 1);
            a.alu_ri(AluOp::Xor, EAX, 0x1111);
            a.jmp(l);
            a.bind(l);
        }
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        a.mov_store(ia32::inst::Addr::abs(DATA), EAX);
        a.hlt();
    })
}

#[test]
fn cache_eviction_preserves_correctness() {
    // A program with many blocks run under a tiny cache: incremental
    // eviction and retranslation must not change behaviour, and the
    // pressure must be absorbed entirely by evictions — the full-flush
    // fallback must never fire.
    let img = churn_image();
    let mut tiny = cold_config();
    tiny.max_cache_bundles = 100;
    let p = differential(&img, tiny, &[(DATA, 8)], "tiny-cache");
    assert!(
        p.engine.stats.evictions > 0,
        "the tiny cache must have evicted"
    );
    assert_eq!(
        p.engine.stats.cache_flushes, 0,
        "eviction must absorb the pressure without a full flush"
    );
    assert!(p.engine.stats.evicted_bundles >= p.engine.stats.evictions);
    // Same program with hot phase + tiny cache.
    let mut tiny_hot = hot_config();
    tiny_hot.max_cache_bundles = 150;
    let p = differential(&img, tiny_hot, &[(DATA, 8)], "tiny-cache-hot");
    assert!(p.engine.stats.evictions > 0);
    assert_eq!(p.engine.stats.cache_flushes, 0);
}

#[test]
fn cache_flush_fallback_preserves_correctness() {
    // With eviction disabled the engine falls back to the paper's
    // wholesale garbage collection: constant flushing and
    // retranslation must not change behaviour either.
    let img = churn_image();
    let mut tiny = cold_config();
    tiny.max_cache_bundles = 100;
    tiny.enable_eviction = false;
    let p = differential(&img, tiny, &[(DATA, 8)], "tiny-cache-flush");
    assert!(
        p.engine.stats.cache_flushes > 0,
        "the tiny cache must have flushed"
    );
    assert_eq!(p.engine.stats.evictions, 0);
}

#[test]
fn region_cycles_account_for_every_engine_cycle() {
    // Cycle-attribution audit: every simulated cycle the engine spends
    // must land in exactly one region (hot/cold/overhead/other/...), so
    // the per-region attribution sums to the machine's total clock even
    // under cache eviction, the degradation ladder, and fault
    // injection. Figures 6/7 depend on this invariant.
    let img = churn_image();
    let mut cfg = hot_config();
    cfg.max_cache_bundles = 150;
    let mut p = Process::launch_with(&img, SimOs::new(), cfg).expect("launch");
    p.engine.chaos = Some(FaultPlan::storm(5));
    match p.run(200_000_000) {
        Outcome::Halted(_) => {}
        other => panic!("{other:?}"),
    }
    assert!(
        p.engine.stats.evictions > 0 && p.engine.stats.faults_injected > 0,
        "the run must exercise eviction and the ladder"
    );
    let m = &p.engine.machine;
    let sum: u64 = m.region_cycles.values().sum();
    assert_eq!(sum, m.cycles, "region attribution must cover the clock");
    // And every charged region is one of the Figure 6/7 categories —
    // nothing leaks into an unreported bucket.
    let dist = TimeDistribution::from_region_cycles(&m.region_cycles);
    assert_eq!(dist.total(), m.cycles);
    assert!(dist.hot > 0 && dist.cold > 0 && dist.overhead > 0);
}

#[test]
fn hot_side_exits_are_counted() {
    // A hot loop with a rare inner branch: the off-trace direction is a
    // side exit and must be counted.
    let img = image(|a| {
        a.mov_ri(ECX, 4000);
        a.mov_ri(EAX, 0);
        let top = a.label();
        let rare = a.label();
        let back = a.label();
        a.bind(top);
        a.inc(EAX);
        a.mov_rr(EBX, ECX);
        a.alu_ri(AluOp::And, EBX, 0x3F); // ~1.5% of iterations
        a.cmp_ri(EBX, 0);
        a.jcc(Cond::E, rare);
        a.bind(back);
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        a.mov_store(ia32::inst::Addr::abs(DATA), EAX);
        a.hlt();
        a.bind(rare);
        a.alu_ri(AluOp::Add, EAX, 1000);
        a.jmp(back);
    });
    let mut p = Process::launch_with(&img, SimOs::new(), hot_config()).unwrap();
    match p.run(u64::MAX / 2) {
        Outcome::Halted(_) => {}
        other => panic!("{other:?}"),
    }
    p.engine.collect_hot_exit_stats();
    assert!(p.engine.stats.hot_traces > 0);
    assert!(
        p.engine.stats.hot_side_exits > 10,
        "rare branch must register as side exits, got {}",
        p.engine.stats.hot_side_exits
    );
    // And the result must still be right (4000 + 62 * 1000).
    let v = p.engine.mem.read(DATA as u64, 4).unwrap();
    assert_eq!(v, 4000 + 1000 * (4000 / 64));
}

#[test]
fn lookup_table_collisions_are_correct() {
    // Two indirect-call targets whose EIPs collide in the direct-mapped
    // lookup table: correctness must survive constant overwriting.
    // Build with a landing pad such that both functions map to the same
    // slot: slots hash on bits 2..14, so addresses 16 KiB apart collide.
    let mut a = Asm::new(0x40_0000);
    let f1 = a.label();
    a.mov_ri(ECX, 600);
    a.mov_ri(EAX, 0);
    let top = a.label();
    a.bind(top);
    // Alternate targets every iteration.
    a.mov_rr(EBX, ECX);
    a.alu_ri(AluOp::And, EBX, 1);
    a.inst(ia32::Inst::ImulRmImm {
        dst: EBX,
        src: ia32::inst::Rm::Reg(EBX),
        imm: 0x4000,
    });
    a.alu_ri(AluOp::Add, EBX, 0x40_1000);
    a.call_r(EBX);
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(ia32::inst::Addr::abs(DATA), EAX);
    a.hlt();
    let _ = f1;
    // Function at 0x40_1000 and its 16KiB-offset twin at 0x40_5000.
    while a.here() < 0x40_1000 {
        a.nop();
    }
    a.alu_ri(AluOp::Add, EAX, 3);
    a.ret();
    while a.here() < 0x40_5000 {
        a.nop();
    }
    a.alu_ri(AluOp::Add, EAX, 7);
    a.ret();
    let img = Image::from_asm(&a).with_bss(DATA, 0x1000);
    let p = differential(&img, cold_config(), &[(DATA, 8)], "lookup-collide");
    assert!(
        p.engine.stats.indirect_misses >= 2,
        "colliding entries must keep missing"
    );
}

#[test]
fn evicted_lookup_slots_never_serve_stale_entries() {
    // Indirect calls through the lookup table under heavy cache
    // pressure: when a call target's block is evicted, its lookup slot
    // must be purged (or already overwritten by the colliding twin) —
    // an indirect branch must never land in reclaimed code. The
    // differential harness catches any stale dispatch as a state
    // mismatch; padding blocks between calls force constant eviction.
    let mut a = Asm::new(0x40_0000);
    a.mov_ri(ECX, 120);
    a.mov_ri(EAX, 0);
    let top = a.label();
    a.bind(top);
    // Alternate between two 16 KiB-apart targets (same lookup slot).
    a.mov_rr(EBX, ECX);
    a.alu_ri(AluOp::And, EBX, 1);
    a.inst(ia32::Inst::ImulRmImm {
        dst: EBX,
        src: ia32::inst::Rm::Reg(EBX),
        imm: 0x4000,
    });
    a.alu_ri(AluOp::Add, EBX, 0x40_1000);
    a.call_r(EBX);
    // Filler block chain: churns the tiny cache so the call targets
    // themselves get evicted between iterations.
    for k in 0..12 {
        let l = a.label();
        a.alu_ri(AluOp::Add, EAX, k);
        a.jmp(l);
        a.bind(l);
    }
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(ia32::inst::Addr::abs(DATA), EAX);
    a.hlt();
    while a.here() < 0x40_1000 {
        a.nop();
    }
    a.alu_ri(AluOp::Add, EAX, 3);
    a.ret();
    while a.here() < 0x40_5000 {
        a.nop();
    }
    a.alu_ri(AluOp::Add, EAX, 7);
    a.ret();
    let img = Image::from_asm(&a).with_bss(DATA, 0x1000);
    let mut tiny = cold_config();
    tiny.max_cache_bundles = 120;
    let p = differential(&img, tiny, &[(DATA, 8)], "evict-lookup-collide");
    assert!(p.engine.stats.evictions > 0, "cache must be under pressure");
    assert!(
        p.engine.stats.indirect_misses >= 2,
        "evicted/colliding entries must keep missing"
    );
}

#[test]
fn hot_exit_collection_is_idempotent() {
    // collect_hot_exit_stats assigns (not accumulates): harvesting
    // twice — as run_el and figure code paths may — must not
    // double-count side exits.
    let img = image(|a| {
        a.mov_ri(ECX, 4000);
        a.mov_ri(EAX, 0);
        let top = a.label();
        let rare = a.label();
        let back = a.label();
        a.bind(top);
        a.inc(EAX);
        a.mov_rr(EBX, ECX);
        a.alu_ri(AluOp::And, EBX, 0x3F);
        a.cmp_ri(EBX, 0);
        a.jcc(Cond::E, rare);
        a.bind(back);
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        a.mov_store(ia32::inst::Addr::abs(DATA), EAX);
        a.hlt();
        a.bind(rare);
        a.alu_ri(AluOp::Add, EAX, 1000);
        a.jmp(back);
    });
    let mut p = Process::launch_with(&img, SimOs::new(), hot_config()).unwrap();
    match p.run(u64::MAX / 2) {
        Outcome::Halted(_) => {}
        other => panic!("{other:?}"),
    }
    p.engine.collect_hot_exit_stats();
    let once = p.engine.stats.hot_side_exits;
    assert!(once > 0);
    p.engine.collect_hot_exit_stats();
    p.engine.collect_hot_exit_stats();
    assert_eq!(
        p.engine.stats.hot_side_exits, once,
        "repeated harvests must not double-count"
    );
}

#[test]
fn inst_limit_returns_cleanly() {
    let img = image(|a| {
        let top = a.label();
        a.bind(top);
        a.inc(EAX);
        a.jmp(top); // infinite loop
    });
    let mut p = Process::launch_with(&img, SimOs::new(), cold_config()).unwrap();
    assert_eq!(p.run(50_000), Outcome::InstLimit);
}

#[test]
fn gettick_syscall_works_translated() {
    let img = image(|a| {
        a.mov_ri(EAX, btlib::sys::GETTICK as i32);
        a.int(0x80);
        a.mov_rr(EBX, EAX);
        a.mov_ri(EAX, btlib::sys::GETTICK as i32);
        a.int(0x80);
        a.alu_rr(AluOp::Sub, EAX, EBX);
        a.mov_rr(EBX, EAX);
        a.mov_ri(EAX, btlib::sys::EXIT as i32);
        a.int(0x80);
    });
    let mut p = Process::launch_with(&img, SimOs::new(), cold_config()).unwrap();
    assert_eq!(p.run(1_000_000), Outcome::Exited(1), "ticks are monotonic");
}

/// Every prediction the indirect-acceleration structures hold — shared
/// lookup-table ways, shadow-stack return predictions, per-site inline
/// caches — must point into a *live* translated extent, even after the
/// cache has churned through many evictions and retranslations. A
/// stale prediction is a branch into reclaimed memory.
#[test]
fn indirect_predictions_stay_coherent_under_eviction() {
    use btgeneric::layout;

    // Calls through a register (two alternating targets) plus a filler
    // chain that keeps the tiny cache evicting; a low heat threshold
    // also drags blocks through promotion/demotion.
    let mut a = Asm::new(0x40_0000);
    a.mov_ri(ECX, 300);
    a.mov_ri(EAX, 0);
    let top = a.label();
    a.bind(top);
    a.mov_rr(EBX, ECX);
    a.alu_ri(AluOp::And, EBX, 1);
    a.inst(ia32::Inst::ImulRmImm {
        dst: EBX,
        src: ia32::inst::Rm::Reg(EBX),
        imm: 0x100,
    });
    a.alu_ri(AluOp::Add, EBX, 0x40_1000);
    a.call_r(EBX);
    for k in 0..10 {
        let l = a.label();
        a.alu_ri(AluOp::Add, EAX, k);
        a.jmp(l);
        a.bind(l);
    }
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(ia32::inst::Addr::abs(DATA), EAX);
    a.hlt();
    while a.here() < 0x40_1000 {
        a.nop();
    }
    a.alu_ri(AluOp::Add, EAX, 3);
    a.ret();
    while a.here() < 0x40_1100 {
        a.nop();
    }
    a.alu_ri(AluOp::Add, EAX, 7);
    a.ret();
    let img = Image::from_asm(&a).with_bss(DATA, 0x1000);

    let mut cfg = hot_config();
    cfg.max_cache_bundles = 150;
    let mut p = differential(&img, cfg, &[(DATA, 8)], "indirect-coherence");
    p.engine.collect_indirect_stats();
    assert!(p.engine.stats.evictions > 0, "cache must be under pressure");
    assert!(
        p.engine.stats.shadow_hits + p.engine.stats.ic_hits > 0,
        "the acceleration must have been exercised"
    );

    let live: Vec<(u64, u64)> = p
        .engine
        .blocks()
        .iter()
        .filter(|b| !b.evicted)
        .flat_map(|b| b.extents.iter().copied())
        .collect();
    let in_live = |t: u64| live.iter().any(|&(s, e)| t >= s && t < e);

    for set in 0..layout::LOOKUP_SETS {
        for way in 0..layout::LOOKUP_WAYS {
            let ea =
                layout::LOOKUP_BASE + (set * layout::LOOKUP_WAYS + way) * layout::LOOKUP_ENTRY_SIZE;
            let key = p.engine.mem.read(ea, 8).unwrap();
            // The table starts zero-filled; 0 and the explicit empty
            // key both mean "no prediction here".
            if key == layout::LOOKUP_EMPTY_KEY || key == 0 {
                continue;
            }
            let target = p.engine.mem.read(ea + 8, 8).unwrap();
            assert!(
                in_live(target),
                "lookup set {set} way {way}: stale target {target:#x} for eip {key:#x}"
            );
        }
    }
    for i in 0..layout::SHADOW_ENTRIES {
        let ea = layout::SHADOW_BASE + i * layout::SHADOW_ENTRY_SIZE;
        let key = p.engine.mem.read(ea, 8).unwrap();
        if key == layout::LOOKUP_EMPTY_KEY {
            continue;
        }
        let target = p.engine.mem.read(ea + 8, 8).unwrap();
        assert!(
            in_live(target),
            "shadow slot {i}: stale prediction {target:#x} for ret eip {key:#x}"
        );
    }
    for &slot in p.engine.ic_slots() {
        let pred = p.engine.mem.read(slot, 8).unwrap();
        if pred == layout::LOOKUP_EMPTY_KEY {
            continue;
        }
        let target = p.engine.mem.read(slot + 8, 8).unwrap();
        assert!(
            in_live(target),
            "inline cache {slot:#x}: stale entry {target:#x} for eip {pred:#x}"
        );
    }
}
