//! Differential tests for the x87 / MMX / SSE translations — the
//! paper's §5 machinery: FP-stack speculation on a flat register file,
//! FXCHG elimination, FP↔MMX aliasing-mode speculation, and XMM format
//! speculation.

use ia32::asm::{Asm, Image};
use ia32::inst::*;
use ia32::regs::*;
use ia32::Cond;
use ia32el::testkit::{cold_config, differential, hot_config};

const DATA: u32 = 0x50_0000;

fn check(name: &str, f: impl Fn(&mut Asm)) {
    let mut a = Asm::new(0x40_0000);
    f(&mut a);
    let img = Image::from_asm(&a).with_bss(DATA, 0x1_0000);
    differential(
        &img,
        cold_config(),
        &[(DATA, 0x400)],
        &format!("{name}/cold"),
    );
    differential(&img, hot_config(), &[(DATA, 0x400)], &format!("{name}/hot"));
}

fn put_f64(a: &mut Asm, addr: u32, v: f64) {
    let bits = v.to_bits();
    a.mov_mi(Addr::abs(addr), bits as u32 as i32);
    a.mov_mi(Addr::abs(addr + 4), (bits >> 32) as u32 as i32);
}

fn put_f32(a: &mut Asm, addr: u32, v: f32) {
    a.mov_mi(Addr::abs(addr), v.to_bits() as i32);
}

#[test]
fn x87_stack_arithmetic() {
    check("x87-arith", |a| {
        put_f64(a, DATA, 1.5);
        put_f64(a, DATA + 8, 2.25);
        put_f32(a, DATA + 16, 10.0);
        a.inst(Inst::Fld {
            src: FpOperand::M64(Addr::abs(DATA)),
        });
        a.inst(Inst::Fld {
            src: FpOperand::M64(Addr::abs(DATA + 8)),
        });
        a.inst(Inst::Farith {
            op: FpArithOp::Add,
            form: FpArithForm::StiSt0 { i: 1, pop: true },
        });
        a.inst(Inst::Farith {
            op: FpArithOp::Mul,
            form: FpArithForm::St0Mem(Size2::S, Addr::abs(DATA + 16)),
        });
        a.inst(Inst::Farith {
            op: FpArithOp::Sub,
            form: FpArithForm::St0Mem(Size2::D, Addr::abs(DATA)),
        });
        a.inst(Inst::Fst {
            dst: FpOperand::M64(Addr::abs(DATA + 24)),
            pop: true,
        });
        a.hlt();
    });
}

#[test]
fn x87_division_exactness() {
    // FDIV goes through the frcpa + Newton-Raphson + Markstein sequence
    // and must be bit-exact.
    check("x87-div", |a| {
        put_f64(a, DATA, 1.0);
        put_f64(a, DATA + 8, 3.0);
        put_f64(a, DATA + 16, 1.0e300);
        put_f64(a, DATA + 24, -7.25e-3);
        for (x, y, out) in [(0u32, 8u32, 64u32), (16, 24, 72), (8, 16, 80)] {
            a.inst(Inst::Fld {
                src: FpOperand::M64(Addr::abs(DATA + x)),
            });
            a.inst(Inst::Farith {
                op: FpArithOp::Div,
                form: FpArithForm::St0Mem(Size2::D, Addr::abs(DATA + y)),
            });
            a.inst(Inst::Fst {
                dst: FpOperand::M64(Addr::abs(DATA + out)),
                pop: true,
            });
        }
        // Divide by zero (masked): result infinity.
        put_f64(a, DATA + 32, 0.0);
        a.inst(Inst::Fld {
            src: FpOperand::M64(Addr::abs(DATA)),
        });
        a.inst(Inst::Farith {
            op: FpArithOp::Div,
            form: FpArithForm::St0Mem(Size2::D, Addr::abs(DATA + 32)),
        });
        a.inst(Inst::Fst {
            dst: FpOperand::M64(Addr::abs(DATA + 88)),
            pop: true,
        });
        a.hlt();
    });
}

#[test]
fn x87_fxchg_and_compare() {
    check("x87-fxch", |a| {
        put_f64(a, DATA, 3.0);
        put_f64(a, DATA + 8, 5.0);
        a.inst(Inst::Fld {
            src: FpOperand::M64(Addr::abs(DATA)),
        });
        a.inst(Inst::Fld {
            src: FpOperand::M64(Addr::abs(DATA + 8)),
        });
        a.inst(Inst::Fld1);
        a.inst(Inst::Fxch { i: 2 });
        a.inst(Inst::Fchs);
        a.inst(Inst::Fabs);
        a.inst(Inst::Fsqrt);
        a.inst(Inst::Fcomi {
            i: 1,
            pop: false,
            unordered: false,
        });
        a.inst(Inst::Setcc {
            cond: Cond::B,
            dst: Rm::Mem(Addr::abs(DATA + 48)),
        });
        a.inst(Inst::Fst {
            dst: FpOperand::M64(Addr::abs(DATA + 56)),
            pop: true,
        });
        a.inst(Inst::Fst {
            dst: FpOperand::M64(Addr::abs(DATA + 64)),
            pop: true,
        });
        a.inst(Inst::Fst {
            dst: FpOperand::M64(Addr::abs(DATA + 72)),
            pop: true,
        });
        a.hlt();
    });
}

#[test]
fn x87_hot_loop_with_fxch() {
    // The classic compiler pattern the paper's FXCHG elimination
    // targets: a loop juggling the stack top. Runs long enough to heat.
    check("x87-fxch-loop", |a| {
        put_f64(a, DATA, 1.0);
        put_f64(a, DATA + 8, 1.0001);
        a.inst(Inst::Fld {
            src: FpOperand::M64(Addr::abs(DATA)),
        }); // acc
        a.inst(Inst::Fld {
            src: FpOperand::M64(Addr::abs(DATA + 8)),
        }); // factor
        a.mov_ri(ECX, 400);
        let top = a.label();
        a.bind(top);
        // st0=factor st1=acc: acc *= factor via fxch juggling.
        a.inst(Inst::Fxch { i: 1 }); // st0=acc st1=factor
        a.inst(Inst::Farith {
            op: FpArithOp::Mul,
            form: FpArithForm::St0Sti(1),
        }); // acc *= factor
        a.inst(Inst::Fxch { i: 1 }); // st0=factor again
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        a.inst(Inst::Fst {
            dst: FpOperand::St(1),
            pop: true,
        });
        a.inst(Inst::Fst {
            dst: FpOperand::M64(Addr::abs(DATA + 16)),
            pop: true,
        });
        a.hlt();
    });
}

#[test]
fn fild_fistp_roundtrip() {
    check("x87-int", |a| {
        a.mov_mi(Addr::abs(DATA), -123456);
        a.inst(Inst::Fild {
            src: Addr::abs(DATA),
        });
        a.inst(Inst::Fld1);
        a.inst(Inst::Farith {
            op: FpArithOp::Add,
            form: FpArithForm::StiSt0 { i: 1, pop: true },
        });
        a.inst(Inst::Fistp {
            dst: Addr::abs(DATA + 8),
        });
        // Out-of-range value -> integer indefinite.
        put_f64(a, DATA + 16, 1.0e300);
        a.inst(Inst::Fld {
            src: FpOperand::M64(Addr::abs(DATA + 16)),
        });
        a.inst(Inst::Fistp {
            dst: Addr::abs(DATA + 24),
        });
        a.hlt();
    });
}

#[test]
fn mmx_packed_arithmetic() {
    check("mmx", |a| {
        a.mov_mi(Addr::abs(DATA), 0x0102_0304);
        a.mov_mi(Addr::abs(DATA + 4), 0x0506_0708);
        a.mov_mi(Addr::abs(DATA + 8), 0x1111_1111);
        a.mov_mi(Addr::abs(DATA + 12), 0x2222_2222);
        a.inst(Inst::Movq {
            mm: Mm::new(0),
            src: MmM::Mem(Addr::abs(DATA)),
            to_mm: true,
        });
        a.inst(Inst::Movq {
            mm: Mm::new(1),
            src: MmM::Mem(Addr::abs(DATA + 8)),
            to_mm: true,
        });
        a.inst(Inst::PAlu {
            op: MmxOp::PAdd(1),
            dst: Mm::new(0),
            src: MmM::Reg(Mm::new(1)),
        });
        a.inst(Inst::PAlu {
            op: MmxOp::PSub(2),
            dst: Mm::new(0),
            src: MmM::Mem(Addr::abs(DATA + 8)),
        });
        a.inst(Inst::PAlu {
            op: MmxOp::Pxor,
            dst: Mm::new(1),
            src: MmM::Reg(Mm::new(0)),
        });
        a.inst(Inst::PAlu {
            op: MmxOp::Pmullw,
            dst: Mm::new(1),
            src: MmM::Reg(Mm::new(0)),
        });
        a.inst(Inst::Movq {
            mm: Mm::new(1),
            src: MmM::Mem(Addr::abs(DATA + 16)),
            to_mm: false,
        });
        a.inst(Inst::Movd {
            mm: Mm::new(0),
            rm: Rm::Reg(EBX),
            to_mm: false,
        });
        a.mov_store(Addr::abs(DATA + 24), EBX);
        a.inst(Inst::Emms);
        a.hlt();
    });
}

#[test]
fn fp_then_mmx_mode_switch() {
    // Exercises the FP/MMX aliasing-mode speculation across blocks: an
    // FP block, then an MMX block, then FP again.
    check("fp-mmx-switch", |a| {
        put_f64(a, DATA, 4.0);
        a.inst(Inst::Fld {
            src: FpOperand::M64(Addr::abs(DATA)),
        });
        a.inst(Inst::Fsqrt);
        a.inst(Inst::Fst {
            dst: FpOperand::M64(Addr::abs(DATA + 8)),
            pop: true,
        });
        // Branch to a new block boundary so mode speculation re-checks.
        let l1 = a.label();
        a.jmp(l1);
        a.bind(l1);
        a.mov_ri(EAX, 0x01020304);
        a.inst(Inst::Movd {
            mm: Mm::new(2),
            rm: Rm::Reg(EAX),
            to_mm: true,
        });
        a.inst(Inst::PAlu {
            op: MmxOp::PAdd(2),
            dst: Mm::new(2),
            src: MmM::Reg(Mm::new(2)),
        });
        a.inst(Inst::Movd {
            mm: Mm::new(2),
            rm: Rm::Reg(EBX),
            to_mm: false,
        });
        a.mov_store(Addr::abs(DATA + 16), EBX);
        let l2 = a.label();
        a.jmp(l2);
        a.bind(l2);
        // Back to FP (mode fix path) — after EMMS so the stack is clean.
        a.inst(Inst::Emms);
        a.inst(Inst::Fld1);
        a.inst(Inst::Fst {
            dst: FpOperand::M64(Addr::abs(DATA + 24)),
            pop: true,
        });
        a.hlt();
    });
}

#[test]
fn sse_scalar_math() {
    check("sse-scalar", |a| {
        put_f32(a, DATA, 1.5);
        put_f32(a, DATA + 4, -2.5);
        a.inst(Inst::Movss {
            xmm: Xmm::new(0),
            rm: XmmM::Mem(Addr::abs(DATA)),
            to_xmm: true,
        });
        a.inst(Inst::Movss {
            xmm: Xmm::new(1),
            rm: XmmM::Mem(Addr::abs(DATA + 4)),
            to_xmm: true,
        });
        for (op, off) in [
            (SseOp::Add, 16u32),
            (SseOp::Sub, 20),
            (SseOp::Mul, 24),
            (SseOp::Div, 28),
            (SseOp::Min, 32),
            (SseOp::Max, 36),
        ] {
            a.inst(Inst::Movss {
                xmm: Xmm::new(2),
                rm: XmmM::Reg(Xmm::new(0)),
                to_xmm: true,
            });
            a.inst(Inst::SseArith {
                op,
                scalar: true,
                dst: Xmm::new(2),
                src: XmmM::Reg(Xmm::new(1)),
            });
            a.inst(Inst::Movss {
                xmm: Xmm::new(2),
                rm: XmmM::Mem(Addr::abs(DATA + off)),
                to_xmm: false,
            });
        }
        a.inst(Inst::Sqrtss {
            dst: Xmm::new(3),
            src: XmmM::Reg(Xmm::new(0)),
        });
        a.inst(Inst::Movss {
            xmm: Xmm::new(3),
            rm: XmmM::Mem(Addr::abs(DATA + 40)),
            to_xmm: false,
        });
        // Conversions.
        a.mov_ri(EAX, -77);
        a.inst(Inst::Cvtsi2ss {
            dst: Xmm::new(4),
            src: Rm::Reg(EAX),
        });
        a.inst(Inst::Cvttss2si {
            dst: EBX,
            src: XmmM::Reg(Xmm::new(4)),
        });
        a.mov_store(Addr::abs(DATA + 44), EBX);
        // Compare.
        a.inst(Inst::Ucomiss {
            a: Xmm::new(0),
            b: XmmM::Reg(Xmm::new(1)),
            signaling: false,
        });
        a.inst(Inst::Setcc {
            cond: Cond::A,
            dst: Rm::Mem(Addr::abs(DATA + 48)),
        });
        a.hlt();
    });
}

#[test]
fn sse_packed_math_and_formats() {
    // Packed and scalar ops interleaved: exercises the XMM format
    // speculation and its conversion paths.
    check("sse-packed", |a| {
        for (i, v) in [1.0f32, 2.0, 3.0, 4.0].iter().enumerate() {
            put_f32(a, DATA + i as u32 * 4, *v);
        }
        for (i, v) in [0.5f32, 0.25, -1.0, 8.0].iter().enumerate() {
            put_f32(a, DATA + 16 + i as u32 * 4, *v);
        }
        a.inst(Inst::Movps {
            xmm: Xmm::new(0),
            rm: XmmM::Mem(Addr::abs(DATA)),
            to_xmm: true,
            aligned: true,
        });
        a.inst(Inst::Movps {
            xmm: Xmm::new(1),
            rm: XmmM::Mem(Addr::abs(DATA + 16)),
            to_xmm: true,
            aligned: true,
        });
        a.inst(Inst::SseArith {
            op: SseOp::Add,
            scalar: false,
            dst: Xmm::new(0),
            src: XmmM::Reg(Xmm::new(1)),
        });
        a.inst(Inst::SseArith {
            op: SseOp::Mul,
            scalar: false,
            dst: Xmm::new(0),
            src: XmmM::Mem(Addr::abs(DATA + 16)),
        });
        // Scalar op forces a format conversion on xmm0.
        a.inst(Inst::SseArith {
            op: SseOp::Add,
            scalar: true,
            dst: Xmm::new(0),
            src: XmmM::Reg(Xmm::new(1)),
        });
        // Back to packed.
        a.inst(Inst::Xorps {
            dst: Xmm::new(2),
            src: XmmM::Reg(Xmm::new(2)),
        });
        a.inst(Inst::SseArith {
            op: SseOp::Sub,
            scalar: false,
            dst: Xmm::new(2),
            src: XmmM::Reg(Xmm::new(0)),
        });
        a.inst(Inst::Movps {
            xmm: Xmm::new(2),
            rm: XmmM::Mem(Addr::abs(DATA + 32)),
            to_xmm: false,
            aligned: true,
        });
        a.inst(Inst::Movps {
            xmm: Xmm::new(0),
            rm: XmmM::Mem(Addr::abs(DATA + 48)),
            to_xmm: false,
            aligned: true,
        });
        a.hlt();
    });
}

#[test]
fn x87_stack_depth_across_blocks() {
    // TOS speculation across block boundaries: leave values on the
    // stack, branch, and keep computing — the head checks must pass and
    // rotation must be consistent.
    check("x87-tos-blocks", |a| {
        put_f64(a, DATA, 2.0);
        a.inst(Inst::Fld {
            src: FpOperand::M64(Addr::abs(DATA)),
        });
        a.inst(Inst::Fld1);
        let l = a.label();
        a.jmp(l);
        a.bind(l);
        // New block: stack depth 2, TOS speculated.
        a.inst(Inst::Farith {
            op: FpArithOp::Add,
            form: FpArithForm::St0Sti(1),
        });
        a.inst(Inst::Fst {
            dst: FpOperand::M64(Addr::abs(DATA + 8)),
            pop: true,
        });
        a.inst(Inst::Fst {
            dst: FpOperand::M64(Addr::abs(DATA + 16)),
            pop: true,
        });
        a.hlt();
    });
}
