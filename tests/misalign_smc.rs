//! Misalignment (paper §5's three-stage scheme) and self-modifying-code
//! tests.

use ia32::asm::{Asm, Image};
use ia32::inst::*;
use ia32::regs::*;
use ia32::Cond;
use ia32el::testkit::{cold_config, differential, hot_config, run_translated};

const DATA: u32 = 0x50_0000;

fn image(f: impl FnOnce(&mut Asm)) -> Image {
    let mut a = Asm::new(0x40_0000);
    f(&mut a);
    Image::from_asm(&a).with_bss(DATA, 0x2_0000)
}

/// A loop doing misaligned 4-byte accesses.
fn misaligned_loop(a: &mut Asm, iters: i32) {
    a.mov_ri(ESI, (DATA + 1) as i32); // misaligned base
    a.mov_ri(ECX, iters);
    a.mov_ri(EAX, 0);
    let top = a.label();
    a.bind(top);
    a.mov_store(Addr::base(ESI), ECX);
    a.alu_rm(AluOp::Add, EAX, Addr::base(ESI));
    a.alu_ri(AluOp::Add, ESI, 5); // stays misaligned, varying low bits
    a.cmp_ri(ESI, (DATA + 0x8000) as i32);
    let nowrap = a.label();
    a.jcc(Cond::L, nowrap);
    a.mov_ri(ESI, (DATA + 1) as i32);
    a.bind(nowrap);
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(DATA + 0x10000), EAX);
    a.hlt();
}

#[test]
fn misaligned_accesses_match_oracle() {
    let img = image(|a| misaligned_loop(a, 300));
    differential(&img, cold_config(), &[(DATA, 0x100)], "misalign/cold");
    differential(&img, hot_config(), &[(DATA, 0x100)], "misalign/hot");
}

#[test]
fn stage1_probe_triggers_regeneration() {
    let img = image(|a| misaligned_loop(a, 50));
    let (_r, p) = run_translated(&img, cold_config(), 100_000_000);
    assert!(
        p.engine.stats.misalign_retrains > 0,
        "stage-1 probes must fire and regenerate blocks"
    );
    // After regeneration, accesses are split instead of faulting: far
    // fewer OS-handled faults than accesses.
    assert!(
        p.engine.stats.misalign_faults < 20,
        "avoidance should prevent repeated faults, got {}",
        p.engine.stats.misalign_faults
    );
}

#[test]
fn avoidance_off_pays_fault_penalty() {
    // The ablation knob: without avoidance every misaligned access takes
    // the multi-thousand-cycle fault; with it the cost collapses —
    // the paper's 1236 s -> 133 s observation in miniature.
    let img = image(|a| misaligned_loop(a, 400));
    let mut no_avoid = cold_config();
    no_avoid.enable_misalign_avoidance = false;
    let (_ra, pa) = run_translated(&img, no_avoid, 400_000_000);
    let (_rb, pb) = run_translated(&img, cold_config(), 400_000_000);
    let cycles_without = pa.engine.machine.cycles;
    let cycles_with = pb.engine.machine.cycles;
    assert!(
        cycles_without > cycles_with * 3,
        "avoidance must give a large speedup: {cycles_without} vs {cycles_with}"
    );
    assert!(pa.engine.stats.misalign_faults > 300);
}

#[test]
fn hot_blocks_use_recorded_granularity() {
    let img = image(|a| misaligned_loop(a, 3000));
    let (_r, p) = run_translated(&img, hot_config(), 1_000_000_000);
    assert!(p.engine.stats.hot_traces > 0, "loop must heat");
    // Hot code with avoidance: negligible residual faults.
    assert!(
        p.engine.stats.misalign_faults < 40,
        "hot avoidance failed: {} faults",
        p.engine.stats.misalign_faults
    );
}

#[test]
fn smc_store_invalidates_and_reruns() {
    // The program patches its own code: an immediate in a later
    // instruction is overwritten, and the new value must be used.
    let mut a = Asm::new(0x40_0000);
    // Layout pass to find the offset of the `mov_ri(EBX, 11)` imm.
    let patch_site = {
        let mut probe = Asm::new(0x40_0000);
        probe.mov_ri(EAX, 0); // placeholder of same shape as below
        probe.mov_store(Addr::abs(0), EAX);
        probe.nop();
        probe.here() // address where mov_ri(EBX, ..) starts
    };
    // mov_ri is B8+r imm32: the immediate lives at patch_site + 1.
    a.mov_ri(EAX, 42);
    a.mov_store(Addr::abs(patch_site + 1), EAX); // SMC store
    a.nop();
    a.mov_ri(EBX, 11); // immediate gets overwritten to 42 beforehand
    a.mov_store(Addr::abs(DATA), EBX);
    a.hlt();
    let img = Image::from_asm(&a)
        .with_bss(DATA, 0x1000)
        .with_writable_code();

    let (r, p) = run_translated(&img, cold_config(), 10_000_000);
    assert_eq!(r.end, ia32el::testkit::RunEnd::Halt);
    assert_eq!(
        p.engine.mem.read(DATA as u64, 4).unwrap(),
        42,
        "the patched immediate must be observed"
    );
    assert!(p.engine.stats.smc_events > 0, "SMC must have been detected");

    // Oracle agrees.
    let oracle = ia32el::testkit::run_interp(&img, 1_000_000);
    assert_eq!(oracle.mem.read(DATA as u64, 4).unwrap(), 42);
}

#[test]
fn smc_in_a_loop_retranslates_each_change() {
    // Self-modifying loop: patches the immediate each iteration.
    let mut probe = Asm::new(0x40_0000);
    probe.mov_ri(EAX, 0);
    probe.mov_ri(ECX, 0);
    let _top_probe = probe.label();
    probe.mov_ri(EBX, 0); // will be patched; starts the loop body
    let body_addr = probe.here() - 5; // mov_ri EBX is 5 bytes

    let mut a = Asm::new(0x40_0000);
    a.mov_ri(EAX, 0);
    a.mov_ri(ECX, 5);
    let top = a.label();
    a.bind(top);
    a.mov_ri(EBX, 0); // imm patched below
    a.alu_rr(AluOp::Add, EAX, EBX);
    // Patch the imm to ECX for the next round.
    a.mov_store(Addr::abs(body_addr + 1), ECX);
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(DATA), EAX);
    a.hlt();
    let img = Image::from_asm(&a)
        .with_bss(DATA, 0x1000)
        .with_writable_code();
    differential(&img, cold_config(), &[(DATA, 8)], "smcloop/cold");
}
