//! Warm start end-to-end: a cold run saves a translation image, a
//! warm run loads it and must produce the same guest-visible result
//! as the interpreter oracle — including when the image on disk is
//! corrupted, truncated, stale, or built under a different codegen
//! configuration. A damaged image may cost performance, never
//! correctness, and never a panic.

use std::path::{Path, PathBuf};

use btgeneric::chaos::{corrupt_image, ImageFaultKind};
use btgeneric::engine::{Config, Outcome};
use btlib::{Process, SimOs};
use ia32::asm::{Asm, Image};
use ia32::inst::{Addr, AluOp};
use ia32::regs::*;
use ia32::Cond;
use ia32el::testkit::{run_interp, RunEnd};

const DATA: u32 = 0x50_0000;
const ENTRY: u32 = 0x40_0000;

/// An outer loop over a chain of tiny blocks: enough distinct blocks
/// that per-extent rejection (one bad record among many good ones) is
/// observable.
fn chain_image() -> Image {
    let mut a = Asm::new(ENTRY);
    a.mov_ri(EAX, 0);
    a.mov_ri(ECX, 300);
    let top = a.label();
    a.bind(top);
    for k in 0..8u32 {
        let next = a.label();
        a.alu_ri(AluOp::Add, EAX, k as i32 + 1);
        a.alu_ri(AluOp::Xor, EAX, 0x1111);
        a.jmp(next);
        a.bind(next);
    }
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(DATA), EAX);
    a.hlt();
    Image::from_asm(&a).with_bss(DATA, 0x1_0000)
}

fn oracle(img: &Image) -> u64 {
    let r = run_interp(img, 50_000_000);
    assert_eq!(r.end, RunEnd::Halt, "oracle must halt");
    r.mem.read(DATA as u64, 4).unwrap()
}

fn guest_result(p: &Process<SimOs>) -> u64 {
    p.engine.mem.read(DATA as u64, 4).unwrap()
}

/// Per-test scratch path so parallel tests never share an image file.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ia32el_persist_{}_{name}.img", std::process::id()))
}

fn base_cfg() -> Config {
    Config {
        heat_threshold: 64,
        hot_candidates: 2,
        ..Config::default()
    }
}

/// Cold run that writes an image to `path` and returns its result.
fn save_run(img: &Image, path: &Path) -> u64 {
    let cfg = Config {
        save_image: Some(path.to_path_buf()),
        ..base_cfg()
    };
    let mut p = Process::launch_with(img, SimOs::new(), cfg).expect("launch");
    assert!(matches!(p.run(u64::MAX / 2), Outcome::Halted(_)));
    assert!(p.engine.stats.image_saves > 0, "autosave must fire");
    assert!(
        p.engine.stats.image_blocks_saved > 0,
        "image must be non-empty"
    );
    guest_result(&p)
}

/// Warm run against whatever is on disk at `path`; returns the
/// finished process for counter inspection.
fn warm_run(img: &Image, path: &Path) -> Process<SimOs> {
    let cfg = Config {
        load_image: Some(path.to_path_buf()),
        ..base_cfg()
    };
    let mut p = Process::launch_with(img, SimOs::new(), cfg).expect("launch");
    assert!(matches!(p.run(u64::MAX / 2), Outcome::Halted(_)));
    p
}

#[test]
fn save_load_roundtrip_matches_oracle() {
    let img = chain_image();
    let want = oracle(&img);
    let path = scratch("roundtrip");

    let cold = save_run(&img, &path);
    assert_eq!(cold, want, "cold run must match oracle");

    let warm = warm_run(&img, &path);
    assert_eq!(guest_result(&warm), want, "warm run must match oracle");
    assert!(
        warm.engine.stats.image_blocks_loaded > 0,
        "image must be used"
    );
    assert_eq!(warm.engine.stats.image_rejects, 0);
    assert_eq!(warm.engine.stats.image_blocks_rejected, 0);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn warm_runs_are_deterministic() {
    let img = chain_image();
    let path = scratch("determinism");
    save_run(&img, &path);

    let a = warm_run(&img, &path);
    let b = warm_run(&img, &path);
    assert_eq!(
        a.engine.stats, b.engine.stats,
        "two warm runs from the same image must be bit-identical"
    );
    assert_eq!(a.engine.machine.cycles, b.engine.machine.cycles);

    let _ = std::fs::remove_file(&path);
}

/// Damages the saved image with `kind`, reruns warm, and checks the
/// run completes with the oracle result. Returns the finished process
/// so callers can assert the counter shape for their fault.
fn damaged_run(kind: ImageFaultKind, tag: &str) -> Process<SimOs> {
    let img = chain_image();
    let want = oracle(&img);
    let path = scratch(tag);
    save_run(&img, &path);

    let mut bytes = std::fs::read(&path).expect("image readable");
    assert!(corrupt_image(&mut bytes, kind, 0x5EED), "fault must apply");
    std::fs::write(&path, &bytes).expect("image writable");

    let warm = warm_run(&img, &path);
    assert_eq!(
        guest_result(&warm),
        want,
        "{tag}: damaged image must not change the guest result"
    );
    let _ = std::fs::remove_file(&path);
    warm
}

#[test]
fn corrupted_header_rejects_wholesale() {
    let p = damaged_run(ImageFaultKind::Header, "header");
    assert!(
        p.engine.stats.image_rejects > 0,
        "wholesale reject expected"
    );
    assert_eq!(p.engine.stats.image_blocks_loaded, 0);
}

#[test]
fn truncated_body_rejects_missing_records() {
    let p = damaged_run(ImageFaultKind::Truncate, "truncate");
    assert_eq!(p.engine.stats.image_rejects, 0, "header is intact");
    assert!(
        p.engine.stats.image_blocks_rejected > 0,
        "cut-off records must be counted as rejected"
    );
}

#[test]
fn stale_extent_checksum_retranslates_only_that_extent() {
    let p = damaged_run(ImageFaultKind::StaleExtent, "stale");
    assert_eq!(p.engine.stats.image_rejects, 0, "header is intact");
    assert!(
        p.engine.stats.image_blocks_rejected >= 1,
        "the stale extent must be rejected"
    );
    assert!(
        p.engine.stats.image_blocks_loaded >= 1,
        "the other extents must still load"
    );
}

#[test]
fn config_fingerprint_mismatch_rejects_wholesale() {
    let img = chain_image();
    let want = oracle(&img);
    let path = scratch("fingerprint");

    // Save under one code shape...
    let cfg = Config {
        save_image: Some(path.clone()),
        enable_fusion: true,
        ..base_cfg()
    };
    let mut p = Process::launch_with(&img, SimOs::new(), cfg).expect("launch");
    assert!(matches!(p.run(u64::MAX / 2), Outcome::Halted(_)));
    assert!(p.engine.stats.image_saves > 0);

    // ...load under another: the image must be refused wholesale.
    let cfg = Config {
        load_image: Some(path.clone()),
        enable_fusion: false,
        ..base_cfg()
    };
    let mut p = Process::launch_with(&img, SimOs::new(), cfg).expect("launch");
    assert!(matches!(p.run(u64::MAX / 2), Outcome::Halted(_)));
    assert_eq!(guest_result(&p), want);
    assert!(
        p.engine.stats.image_rejects > 0,
        "fingerprint must gate the load"
    );
    assert_eq!(p.engine.stats.image_blocks_loaded, 0);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_image_is_a_clean_miss() {
    let img = chain_image();
    let want = oracle(&img);
    let path = scratch("missing");
    let _ = std::fs::remove_file(&path);

    let warm = warm_run(&img, &path);
    assert_eq!(guest_result(&warm), want);
    assert!(
        warm.engine.stats.image_rejects > 0,
        "unreadable image counts as a reject"
    );
    assert_eq!(warm.engine.stats.image_blocks_loaded, 0);
}

/// A hot loop around a monomorphic indirect call: enough iterations to
/// cross `base_cfg`'s heat threshold and train the call site's inline
/// cache, so the saved image carries both heat counters and an IC hint.
fn hot_indirect_image() -> Image {
    let mut a = Asm::new(ENTRY);
    a.mov_ri(EAX, 0);
    a.mov_ri(ECX, 400);
    a.mov_ri(EBX, 0x40_1000);
    let top = a.label();
    a.bind(top);
    a.call_r(EBX);
    a.alu_ri(AluOp::Xor, EAX, 0x0F0F);
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(DATA), EAX);
    a.hlt();
    while a.here() < 0x40_1000 {
        a.nop();
    }
    a.alu_ri(AluOp::Add, EAX, 5);
    a.ret();
    Image::from_asm(&a).with_bss(DATA, 0x1_0000)
}

#[test]
fn warm_boot_restores_profile_and_reheats() {
    let img = hot_indirect_image();
    let want = oracle(&img);
    let path = scratch("profile");

    // Cold run: profiles from zero, promotes, and saves heat counters
    // plus the monomorphic IC hint alongside the translations.
    let cfg = Config {
        save_image: Some(path.clone()),
        ..base_cfg()
    };
    let mut cold = Process::launch_with(&img, SimOs::new(), cfg).expect("launch");
    assert!(matches!(cold.run(u64::MAX / 2), Outcome::Halted(_)));
    assert_eq!(guest_result(&cold), want, "cold run must match oracle");
    assert!(
        cold.engine.stats.hot_traces > 0,
        "workload must heat in the cold run"
    );

    // Warm run: the profile rides back in with the image...
    let warm = warm_run(&img, &path);
    assert_eq!(guest_result(&warm), want, "warm run must match oracle");
    assert!(warm.engine.stats.image_blocks_loaded > 0);
    assert!(
        warm.engine.stats.profile_heat_restored > 0,
        "saved heat counters must be written back into profile slots"
    );
    assert!(
        warm.engine.stats.profile_ic_restored > 0,
        "the monomorphic call site's IC hint must be re-trained"
    );
    // ...so the warm boot re-heats: promotion resumes from the saved
    // counters and the run is strictly cheaper than profiling and
    // translating from scratch.
    assert!(
        warm.engine.stats.hot_traces > 0,
        "warm boot must still reach the hot phase"
    );
    assert!(
        warm.engine.machine.cycles < cold.engine.machine.cycles,
        "warm start with a restored profile must beat the cold run \
         (warm {} vs cold {})",
        warm.engine.machine.cycles,
        cold.engine.machine.cycles
    );

    // With restore_profiles off the translations still load, but the
    // profile starts from zero: no heat write-back, no IC re-training.
    let cfg = Config {
        load_image: Some(path.clone()),
        restore_profiles: false,
        ..base_cfg()
    };
    let mut flat = Process::launch_with(&img, SimOs::new(), cfg).expect("launch");
    assert!(matches!(flat.run(u64::MAX / 2), Outcome::Halted(_)));
    assert_eq!(guest_result(&flat), want, "gated run must match oracle");
    assert!(flat.engine.stats.image_blocks_loaded > 0);
    assert_eq!(
        flat.engine.stats.profile_heat_restored, 0,
        "restore_profiles: false must suppress heat write-back"
    );
    assert_eq!(
        flat.engine.stats.profile_ic_restored, 0,
        "restore_profiles: false must suppress IC hint re-training"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn pretranslation_covers_the_static_cfg() {
    let img = chain_image();
    let want = oracle(&img);
    let cfg = Config {
        pretranslate: true,
        ..base_cfg()
    };
    let mut p = Process::launch_with(&img, SimOs::new(), cfg).expect("launch");
    assert!(matches!(p.run(u64::MAX / 2), Outcome::Halted(_)));
    assert_eq!(guest_result(&p), want);
    assert!(
        p.engine.stats.pretranslated_blocks > 0,
        "the static walk must translate ahead of execution"
    );
}
