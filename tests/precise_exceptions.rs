//! Precise-exception tests (paper §4 and Table 1): on any fault, the
//! reconstructed IA-32 state must equal the oracle's state at the exact
//! faulting instruction — in cold code (state register) and in hot code
//! (commit points + recovery maps).

use btgeneric::engine::Outcome;
use ia32::asm::{Asm, Image};
use ia32::inst::*;
use ia32::regs::*;
use ia32::Cond;
use ia32el::testkit::{assert_cpu_equiv, cold_config, hot_config, run_interp, run_translated};

const DATA: u32 = 0x50_0000;
const UNMAPPED: u32 = 0x0000_1000;

fn image(f: impl FnOnce(&mut Asm)) -> Image {
    let mut a = Asm::new(0x40_0000);
    f(&mut a);
    Image::from_asm(&a).with_bss(DATA, 0x1_0000)
}

/// Runs both sides expecting a fault; compares faulting EIP + state.
fn check_fault(name: &str, img: &Image) {
    for (cfgname, cfg) in [("cold", cold_config()), ("hot", hot_config())] {
        let oracle = run_interp(img, 50_000_000);
        let (trans, _p) = run_translated(img, cfg, 400_000_000);
        let what = format!("{name}/{cfgname}");
        match (&oracle.end, &trans.end) {
            (ia32el::testkit::RunEnd::Fault(oe), ia32el::testkit::RunEnd::Fault(te)) => {
                assert_eq!(oe, te, "{what}: faulting EIP");
                assert_cpu_equiv(&oracle.cpu, &trans.cpu, &what);
            }
            other => panic!("{what}: expected faults, got {other:?}"),
        }
    }
}

#[test]
fn table1_push_does_not_move_esp_on_fault() {
    // The paper's Table 1: `push eax` with an unmapped stack must fault
    // with ESP unchanged (store before ESP update).
    let img = image(|a| {
        a.mov_ri(EAX, 0xDEAD);
        a.mov_ri(ESP, UNMAPPED as i32);
        a.push_r(EAX);
        a.hlt();
    });
    let (trans, _p) = run_translated(&img, cold_config(), 1_000_000);
    match trans.end {
        ia32el::testkit::RunEnd::Fault(eip) => {
            assert_eq!(trans.cpu.esp(), UNMAPPED, "ESP must be unchanged");
            assert_eq!(trans.cpu.gpr[0], 0xDEAD);
            // The faulting instruction is the push (3rd instruction).
            assert_eq!(eip, trans.cpu.eip);
        }
        other => panic!("expected fault, got {other:?}"),
    }
    check_fault("table1", &img);
}

#[test]
fn fault_mid_block_preserves_earlier_state() {
    // Several state changes, then a faulting load mid-block: everything
    // before must be committed, nothing after.
    let img = image(|a| {
        a.mov_ri(EAX, 1);
        a.mov_ri(EBX, 2);
        a.alu_rr(AluOp::Add, EAX, EBX);
        a.mov_store(Addr::abs(DATA), EAX);
        a.mov_load(ECX, Addr::abs(UNMAPPED)); // faults
        a.mov_ri(EDX, 99); // must not execute
        a.hlt();
    });
    check_fault("midblock", &img);
}

#[test]
fn fault_inside_hot_trace_reconstructs() {
    // Heat a loop, then make it fault: the recovery map must rebuild
    // the state at the faulting iteration.
    let img = image(|a| {
        // data[0] holds the address to load from; after N iterations it
        // switches to an unmapped address.
        a.mov_mi(Addr::abs(DATA), (DATA + 64) as i32);
        a.mov_ri(ECX, 2000);
        a.mov_ri(EAX, 0);
        let top = a.label();
        a.bind(top);
        a.mov_load(ESI, Addr::abs(DATA));
        a.alu_rm(AluOp::Add, EAX, Addr::base(ESI)); // faults when ESI bad
        a.inc(EAX);
        a.cmp_ri(ECX, 1000);
        let skip = a.label();
        a.jcc(Cond::Ne, skip);
        a.mov_mi(Addr::abs(DATA), UNMAPPED as i32); // poison the pointer
        a.bind(skip);
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        a.hlt();
    });
    check_fault("hotfault", &img);
}

#[test]
fn divide_by_zero_in_hot_code() {
    let img = image(|a| {
        a.mov_ri(EDI, 5000);
        a.mov_ri(EBX, 100);
        let top = a.label();
        a.bind(top);
        a.mov_rr(EAX, EDI);
        a.mov_ri(EDX, 0);
        // Divisor becomes zero on the last iteration.
        a.lea(ECX, Addr::base_disp(EDI, -1));
        a.divide(MulDivOp::Div, ECX);
        a.alu_rr(AluOp::Add, EBX, EAX);
        a.dec(EDI);
        a.jcc(Cond::Ne, top);
        a.hlt();
    });
    check_fault("div0-hot", &img);
}

#[test]
fn handler_can_resume_after_fixing_state() {
    // A guest handler fixes the bad pointer and returns to re-execute
    // the faulting instruction (the paper: "execution resumes from the
    // start of the IA-32 instruction [after] the exception handler").
    let build = |haddr: i32| {
        let mut a = Asm::new(0x40_0000);
        let handler = a.label();
        a.mov_ri(EAX, btlib::sys::SIGNAL as i32);
        a.mov_ri(EBX, haddr);
        a.int(0x80);
        a.mov_ri(ESI, UNMAPPED as i32);
        a.mov_load(EDX, Addr::base(ESI)); // faults, then retried
        a.mov_store(Addr::abs(DATA + 8), EDX);
        a.hlt();
        a.bind(handler);
        // Fix ESI to a valid buffer holding 0x777 and return to retry.
        a.mov_ri(ESI, DATA as i32);
        a.mov_mi(Addr::base(ESI), 0x777);
        a.ret(); // pops the pushed faulting EIP: re-executes the load
        (a.label_addr(handler), a)
    };
    let (h, _) = build(0);
    let (h2, a) = build(h as i32);
    assert_eq!(h, h2);
    let img = Image::from_asm(&a).with_bss(DATA, 0x1000);

    for (cfgname, cfg) in [("cold", cold_config()), ("hot", hot_config())] {
        let (trans, p) = run_translated(&img, cfg, 10_000_000);
        assert_eq!(
            trans.end,
            ia32el::testkit::RunEnd::Halt,
            "{cfgname}: handler resumes"
        );
        assert_eq!(
            p.engine.mem.read((DATA + 8) as u64, 4).unwrap(),
            0x777,
            "{cfgname}: retried load sees the fixed value"
        );
    }
}

#[test]
fn fp_stack_overflow_detected() {
    // Nine pushes: the ninth must raise the stack fault with the right
    // EIP and the status word marked.
    let img = image(|a| {
        for _ in 0..9 {
            a.inst(Inst::Fld1);
        }
        a.hlt();
    });
    let oracle = run_interp(&img, 1_000_000);
    let (trans, _p) = run_translated(&img, cold_config(), 10_000_000);
    match (&oracle.end, &trans.end) {
        (ia32el::testkit::RunEnd::Fault(oe), ia32el::testkit::RunEnd::Fault(te)) => {
            assert_eq!(oe, te, "stack-fault EIP");
            assert_ne!(
                trans.cpu.fpu.status & ia32::fpu::status::SF,
                0,
                "status word shows the stack fault"
            );
        }
        other => panic!("expected stack faults, got {other:?}"),
    }
}

#[test]
fn fp_stack_underflow_detected() {
    let img = image(|a| {
        a.inst(Inst::Fld1);
        a.inst(Inst::Fst {
            dst: FpOperand::M64(Addr::abs(DATA)),
            pop: true,
        });
        // Stack now empty: this faults.
        a.inst(Inst::Farith {
            op: FpArithOp::Add,
            form: FpArithForm::St0Sti(1),
        });
        a.hlt();
    });
    let oracle = run_interp(&img, 1_000_000);
    let (trans, _p) = run_translated(&img, cold_config(), 10_000_000);
    match (&oracle.end, &trans.end) {
        (ia32el::testkit::RunEnd::Fault(oe), ia32el::testkit::RunEnd::Fault(te)) => {
            assert_eq!(oe, te);
        }
        other => panic!("expected stack faults, got {other:?}"),
    }
}

#[test]
fn ud2_raises_invalid_opcode() {
    let img = image(|a| {
        a.mov_ri(EAX, 7);
        a.inst(Inst::Ud2);
        a.hlt();
    });
    check_fault("ud2", &img);
}

#[test]
fn split_store_probe_reports_write_fault() {
    // A misaligned store across a page boundary into unmapped memory:
    // the avoidance path probes with a load, but the delivered fault
    // must still be a *write* fault (the engine re-derives intent).
    let img = image(|a| {
        // First touch a misaligned address so the block regenerates
        // with detect+avoid, then hit the unmapped page.
        a.mov_ri(ESI, (DATA + 2) as i32);
        a.mov_ri(ECX, 40);
        let top = a.label();
        a.bind(top);
        a.mov_store(Addr::base(ESI), ECX);
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        // Now a misaligned store straddling into unmapped space.
        a.mov_ri(ESI, (DATA + 0x10000 - 2) as i32);
        a.mov_store(Addr::base(ESI), ECX);
        a.hlt();
    });
    let oracle = run_interp(&img, 1_000_000);
    let (trans, _p) = run_translated(&img, cold_config(), 10_000_000);
    match (&oracle.end, &trans.end) {
        (ia32el::testkit::RunEnd::Fault(oe), ia32el::testkit::RunEnd::Fault(te)) => {
            assert_eq!(oe, te, "faulting EIP must match");
        }
        other => panic!("expected faults, got {other:?}"),
    }
}

#[test]
fn exit_syscall_state_is_consistent() {
    // Not a fault, but the syscall path also reconstructs state: the
    // registers at the syscall must match the oracle.
    let img = image(|a| {
        a.mov_ri(EBX, 41);
        a.inc(EBX);
        a.mov_ri(EAX, btlib::sys::EXIT as i32);
        a.int(0x80);
    });
    let (trans, _p) = run_translated(&img, cold_config(), 1_000_000);
    assert_eq!(trans.end, ia32el::testkit::RunEnd::Exit(42));
    match run_interp(&img, 1_000_000).end {
        ia32el::testkit::RunEnd::Exit(c) => assert_eq!(c, 42),
        other => panic!("oracle: {other:?}"),
    }
    let _ = Outcome::Exited(42);
}

/// Single-steps the interpreter over `img` and returns every EIP it
/// executed (the oracle's instruction footprint).
fn interp_visited_eips(img: &Image, max_steps: u64) -> std::collections::HashSet<u32> {
    use btgeneric::btos::{BtOs, SyscallOutcome};
    let mut mem = ia32::mem::GuestMem::new();
    let cpu = img.load(&mut mem);
    let mut os = btlib::SimOs::new();
    let mut interp = ia32::interp::Interp::new();
    interp.cpu = cpu;
    let mut visited = std::collections::HashSet::new();
    for _ in 0..max_steps {
        visited.insert(interp.cpu.eip);
        match interp.step(&mut mem) {
            Ok(ia32::interp::Event::Continue) => {}
            Ok(ia32::interp::Event::Halt) => return visited,
            Ok(ia32::interp::Event::Syscall { vector }) => {
                assert_eq!(vector, 0x80);
                match os.syscall(&mut interp.cpu, &mut mem) {
                    SyscallOutcome::Continue => {}
                    SyscallOutcome::Exit(_) => return visited,
                }
            }
            Err(trap) => panic!("oracle fault at {:#x}: {:?}", trap.eip, trap.fault),
        }
    }
    panic!("oracle did not halt in {max_steps} steps");
}

/// The exhaustive commit-point sweep (hostile-guest PR acceptance):
/// for every hot trace the 15-kernel suite promotes — under both the
/// template hot phase and the typed-IR pipeline — every recovery entry
/// must round-trip `reconstruct_at` into a state the interpreter
/// oracle could actually have been in: a `Some` reconstruction whose
/// EIP the oracle executed, a well-formed FXCHG permutation, and every
/// `by_slot` index in range. Signals interrupt hot traces exactly at
/// these points, so a hole here is a corrupted guest on delivery.
#[test]
fn recovery_map_sweep_covers_every_commit_point() {
    let mut kernels = workloads::spec_int();
    kernels.extend(workloads::indirect_kernels());
    assert_eq!(kernels.len(), 15, "the suite covers all 15 kernels");
    let ir_cfg = btgeneric::engine::Config {
        enable_hot_ir: true,
        ..hot_config()
    };
    let mut traces = 0usize;
    let mut points = 0usize;
    for w in &kernels {
        let scale = (w.scale / 400).max(512);
        let img = workloads::harness::build_image(w, scale);
        let visited = interp_visited_eips(&img, 500_000_000);
        for (cfgname, cfg) in [("hot", hot_config()), ("hot-ir", ir_cfg.clone())] {
            let (trans, p) = run_translated(&img, cfg, 400_000_000);
            assert_eq!(
                trans.end,
                ia32el::testkit::RunEnd::Halt,
                "{}/{cfgname}: must halt",
                w.name
            );
            for (eip, hot) in p.engine.hot_recovery_maps() {
                traces += 1;
                let what = format!("{}/{cfgname} trace @{eip:#x}", w.name);
                // A trace whose micro-ops can none of them fault keeps
                // an empty map; the sweep is vacuous for it.
                for (&(ip, slot), &idx) in &hot.by_slot {
                    assert!(
                        (idx as usize) < hot.recovery.len(),
                        "{what}: by_slot ({ip:#x},{slot}) -> {idx} out of range"
                    );
                }
                for idx in 0..hot.recovery.len() as u32 {
                    points += 1;
                    let e = hot.recovery[idx as usize];
                    let cpu = hot
                        .reconstruct_at(&p.engine.machine, idx)
                        .unwrap_or_else(|| panic!("{what}: entry {idx} failed to reconstruct"));
                    assert_eq!(cpu.eip, e.ia32_ip, "{what}: entry {idx} EIP");
                    let mut seen = [false; 8];
                    for &b in &e.perm {
                        assert!(b < 8, "{what}: entry {idx} perm byte {b} out of range");
                        seen[b as usize] = true;
                    }
                    assert!(
                        seen.iter().all(|&s| s),
                        "{what}: entry {idx} perm {:?} is not a permutation",
                        e.perm
                    );
                    assert!(
                        visited.contains(&e.ia32_ip),
                        "{what}: entry {idx} EIP {:#x} never executed by the oracle",
                        e.ia32_ip
                    );
                }
            }
        }
    }
    assert!(traces > 0, "the suite never promoted a hot trace");
    assert!(points > 0, "the suite recorded no commit points");
    eprintln!("swept {points} commit points across {traces} hot traces");
}
