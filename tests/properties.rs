//! Property-style tests: randomized instruction streams run under the
//! oracle and the translator must agree; encoder/decoder round-trips;
//! FPU stack invariants.
//!
//! Generation uses a deterministic xorshift PRNG (same scheme as the
//! `hunt` fuzzer binary) instead of proptest, so the suite builds and
//! runs with no network access. Every case is reproducible from its
//! printed seed.

use ia32::asm::{Asm, Image};
use ia32::decode::decode;
use ia32::encode::encode_to_vec;
use ia32::inst::*;
use ia32::regs::*;
use ia32::{Cond, Size};
use ia32el::testkit::{cold_config, differential, hot_config};

const DATA: u32 = 0x50_0000;

/// xorshift64 step (never yields 0 for a non-zero state).
fn rng(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

fn seed_for(case: u64) -> u64 {
    case.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

/// A random (but always-terminating) ALU instruction. ESP (register
/// number 4 at dword size) is kept intact so the stack stays valid for
/// the harness.
fn gen_alu(x: &mut u64) -> Inst {
    const OPS: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Adc,
        AluOp::Sbb,
        AluOp::Cmp,
    ];
    const SIZES: [Size; 3] = [Size::B, Size::W, Size::D];
    let op = OPS[(rng(x) % 8) as usize];
    let size = SIZES[(rng(x) % 3) as usize];
    let dst = Gpr::new((rng(x) % 8) as u8);
    let dst = if dst.num() == 4 { Gpr::new(5) } else { dst };
    let src = if rng(x).is_multiple_of(2) {
        RmI::Reg(Gpr::new((rng(x) % 8) as u8))
    } else {
        RmI::Imm(rng(x) as i32)
    };
    Inst::Alu {
        op,
        size,
        dst: Rm::Reg(dst),
        src,
    }
}

/// A random simple instruction drawn from the same families as the old
/// proptest strategy (ALU, mov, shifts, inc, imul).
fn gen_simple(x: &mut u64) -> Inst {
    let reg = |x: &mut u64| Gpr::new((rng(x) % 8) as u8);
    let not_esp = |g: Gpr, alt: u8| if g.num() == 4 { Gpr::new(alt) } else { g };
    match rng(x) % 7 {
        0 => gen_alu(x),
        1 => {
            let r = not_esp(reg(x), 6);
            Inst::Mov {
                size: Size::D,
                dst: Rm::Reg(r),
                src: RmI::Imm(rng(x) as i32),
            }
        }
        2 => {
            let d = not_esp(reg(x), 7);
            let s = reg(x);
            Inst::Mov {
                size: Size::D,
                dst: Rm::Reg(d),
                src: RmI::Reg(s),
            }
        }
        3 => {
            let r = not_esp(reg(x), 3);
            Inst::Shift {
                op: ShiftOp::Shl,
                size: Size::D,
                dst: Rm::Reg(r),
                count: ShiftCount::Imm((rng(x) % 32) as u8),
            }
        }
        4 => {
            let r = not_esp(reg(x), 2);
            Inst::Shift {
                op: ShiftOp::Sar,
                size: Size::D,
                dst: Rm::Reg(r),
                count: ShiftCount::Imm((rng(x) % 32) as u8),
            }
        }
        5 => {
            let r = not_esp(reg(x), 1);
            Inst::IncDec {
                inc: true,
                size: Size::D,
                dst: Rm::Reg(r),
            }
        }
        _ => {
            let d = not_esp(reg(x), 0);
            let s = reg(x);
            Inst::ImulRm {
                dst: d,
                src: Rm::Reg(s),
            }
        }
    }
}

/// Straight-line ALU program check: the translator must produce exactly
/// the oracle's final registers and flags.
fn check_alu_program(prog: &[Inst], what: &str) {
    let mut a = Asm::new(0x40_0000);
    // Seed registers with recognizable values.
    for (i, r) in Gpr::all().iter().enumerate() {
        if r.num() != 4 {
            a.mov_ri(*r, 0x1111 * (i as i32 + 1));
        }
    }
    for inst in prog {
        a.inst(*inst);
    }
    // Store every register so memory compare catches everything.
    for (i, r) in Gpr::all().iter().enumerate() {
        a.mov_store(Addr::abs(DATA + 4 * i as u32), *r);
    }
    // And the flags, via setcc of every condition.
    for c in 0..16u8 {
        a.inst(Inst::Setcc {
            cond: Cond::from_code(c),
            dst: Rm::Mem(Addr::abs(DATA + 64 + c as u32)),
        });
    }
    a.hlt();
    let img = Image::from_asm(&a).with_bss(DATA, 0x1000);
    differential(&img, cold_config(), &[(DATA, 96)], what);
}

/// Random straight-line ALU programs (48 cases, like the old
/// `ProptestConfig::with_cases(48)`).
#[test]
fn random_alu_programs_match() {
    for case in 0..48u64 {
        let mut x = seed_for(case);
        let n = 1 + (rng(&mut x) % 39) as usize;
        let prog: Vec<Inst> = (0..n).map(|_| gen_simple(&mut x)).collect();
        check_alu_program(&prog, &format!("prop-alu seed {case}"));
    }
}

/// Saved proptest regression: byte-size ADD r/r followed by SHL with an
/// immediate count of zero (flags must survive the 0-count shift).
#[test]
fn regression_byte_add_then_shl0() {
    let prog = [
        Inst::Alu {
            op: AluOp::Add,
            size: Size::B,
            dst: Rm::Reg(Gpr::new(0)),
            src: RmI::Reg(Gpr::new(0)),
        },
        Inst::Shift {
            op: ShiftOp::Shl,
            size: Size::D,
            dst: Rm::Reg(Gpr::new(0)),
            count: ShiftCount::Imm(0),
        },
    ];
    check_alu_program(&prog, "prop-alu regression shl0");
}

/// Randomized loop bodies reach the hot phase and still match.
#[test]
fn random_hot_loops_match() {
    for case in 0..24u64 {
        let mut x = seed_for(case ^ 0x5EED);
        let n = 1 + (rng(&mut x) % 9) as usize;
        let iters = 200 + (rng(&mut x) % 400) as i32;
        let body: Vec<Inst> = (0..n)
            .map(|_| patch_away_from_ecx(gen_simple(&mut x)))
            .collect();
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(ECX, iters);
        let top = a.label();
        a.bind(top);
        for inst in &body {
            a.inst(*inst);
        }
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        for (i, r) in Gpr::all().iter().enumerate() {
            a.mov_store(Addr::abs(DATA + 4 * i as u32), *r);
        }
        a.hlt();
        let img = Image::from_asm(&a).with_bss(DATA, 0x1000);
        differential(
            &img,
            hot_config(),
            &[(DATA, 32)],
            &format!("prop-hot seed {case}"),
        );
    }
}

/// encode -> decode is the identity on the instruction stream level:
/// re-encoding the decode gives the same bytes.
#[test]
fn encode_decode_roundtrip() {
    for case in 0..512u64 {
        let mut x = seed_for(case ^ 0xC0DE);
        let inst = gen_simple(&mut x);
        let addr = (rng(&mut x) % 0x7FFF_0000) as u32;
        let bytes = encode_to_vec(&inst, addr).expect("encodable");
        let (decoded, len) = decode(&bytes, addr).expect("decodable");
        assert_eq!(len, bytes.len(), "length mismatch for {inst:?}");
        let re = encode_to_vec(&decoded, addr).expect("re-encodable");
        assert_eq!(re, bytes, "roundtrip mismatch for {inst:?}");
    }
}

/// FPU stack push/pop/fxch sequences keep TOS/TAG consistent.
#[test]
fn fpu_stack_invariants() {
    for case in 0..64u64 {
        let mut x = seed_for(case ^ 0xF9);
        let n = 1 + (rng(&mut x) % 63) as usize;
        let mut f = ia32::fpu::Fpu::new();
        let mut depth: i32 = 0;
        for _ in 0..n {
            match rng(&mut x) % 4 {
                0 => {
                    if f.push(1.0).is_ok() {
                        depth += 1;
                    }
                }
                1 => {
                    if f.pop().is_ok() {
                        depth -= 1;
                    }
                }
                2 => {
                    let _ = f.fxch(1);
                }
                _ => {
                    if depth > 0 {
                        assert!(f.st(0).is_ok());
                    }
                }
            }
            assert_eq!(f.depth() as i32, depth, "seed {case}");
            assert!((0..=8).contains(&depth), "seed {case}");
            // TOS always reflects depth relative to start.
            assert_eq!(f.top as i32, (8 - depth).rem_euclid(8), "seed {case}");
        }
    }
}

/// True if writing register number `n` at `size` touches ECX (the loop
/// counter): ECX itself at dword/word size, or CL (1) / CH (5) at byte
/// size.
fn touches_ecx(n: u8, size: Size) -> bool {
    match size {
        Size::B => n == 1 || n == 5,
        _ => n == 1,
    }
}

fn patch_away_from_ecx(inst: Inst) -> Inst {
    match inst {
        Inst::Alu {
            op,
            size,
            dst: Rm::Reg(r),
            src,
        } if touches_ecx(r.num(), size) => Inst::Alu {
            op,
            size,
            dst: Rm::Reg(Gpr::new(0)),
            src,
        },
        Inst::Mov {
            size,
            dst: Rm::Reg(r),
            src,
        } if touches_ecx(r.num(), size) => Inst::Mov {
            size,
            dst: Rm::Reg(Gpr::new(0)),
            src,
        },
        Inst::Shift {
            op,
            size,
            dst: Rm::Reg(r),
            count,
        } if touches_ecx(r.num(), size) => Inst::Shift {
            op,
            size,
            dst: Rm::Reg(Gpr::new(3)),
            count,
        },
        Inst::IncDec {
            inc,
            size,
            dst: Rm::Reg(r),
        } if touches_ecx(r.num(), size) => Inst::IncDec {
            inc,
            size,
            dst: Rm::Reg(Gpr::new(0)),
        },
        Inst::ImulRm { dst, src } if dst.num() == 1 => Inst::ImulRm {
            dst: Gpr::new(0),
            src,
        },
        other => other,
    }
}
