//! Property-based tests: randomized instruction streams run under the
//! oracle and the translator must agree; encoder/decoder round-trips;
//! FPU stack invariants.

use ia32::asm::{Asm, Image};
use ia32::decode::decode;
use ia32::encode::encode_to_vec;
use ia32::inst::*;
use ia32::regs::*;
use ia32::{Cond, Size};
use ia32el::testkit::{cold_config, differential, hot_config};
use proptest::prelude::*;

const DATA: u32 = 0x50_0000;

/// A generator for random (but always-terminating) ALU instructions.
fn arb_alu() -> impl Strategy<Value = Inst> {
    let reg = (0u8..8).prop_map(Gpr::new);
    let op = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Adc),
        Just(AluOp::Sbb),
        Just(AluOp::Cmp),
    ];
    let size = prop_oneof![Just(Size::B), Just(Size::W), Just(Size::D)];
    (op, size, reg.clone(), prop_oneof![
        reg.prop_map(RmI::Reg),
        any::<i32>().prop_map(RmI::Imm),
    ])
        .prop_map(|(op, size, dst, src)| {
            // Keep ESP intact (register number 4 at dword size) so the
            // stack stays valid for the harness.
            let dst = if dst.num() == 4 { Gpr::new(5) } else { dst };
            Inst::Alu {
                op,
                size,
                dst: Rm::Reg(dst),
                src,
            }
        })
}

fn arb_simple() -> impl Strategy<Value = Inst> {
    let reg = (0u8..8).prop_map(Gpr::new);
    prop_oneof![
        arb_alu(),
        (reg.clone(), any::<i32>()).prop_map(|(r, v)| {
            let r = if r.num() == 4 { Gpr::new(6) } else { r };
            Inst::Mov {
                size: Size::D,
                dst: Rm::Reg(r),
                src: RmI::Imm(v),
            }
        }),
        (reg.clone(), reg.clone()).prop_map(|(d, s)| {
            let d = if d.num() == 4 { Gpr::new(7) } else { d };
            Inst::Mov {
                size: Size::D,
                dst: Rm::Reg(d),
                src: RmI::Reg(s),
            }
        }),
        (reg.clone(), (0u8..32)).prop_map(|(r, c)| {
            let r = if r.num() == 4 { Gpr::new(3) } else { r };
            Inst::Shift {
                op: ShiftOp::Shl,
                size: Size::D,
                dst: Rm::Reg(r),
                count: ShiftCount::Imm(c),
            }
        }),
        (reg.clone(), (0u8..32)).prop_map(|(r, c)| {
            let r = if r.num() == 4 { Gpr::new(2) } else { r };
            Inst::Shift {
                op: ShiftOp::Sar,
                size: Size::D,
                dst: Rm::Reg(r),
                count: ShiftCount::Imm(c),
            }
        }),
        reg.clone().prop_map(|r| {
            let r = if r.num() == 4 { Gpr::new(1) } else { r };
            Inst::IncDec {
                inc: true,
                size: Size::D,
                dst: Rm::Reg(r),
            }
        }),
        (reg.clone(), reg).prop_map(|(d, s)| Inst::ImulRm {
            dst: if d.num() == 4 { Gpr::new(0) } else { d },
            src: Rm::Reg(s),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random straight-line ALU programs: the translator must produce
    /// exactly the oracle's final registers and flags.
    #[test]
    fn random_alu_programs_match(prog in prop::collection::vec(arb_simple(), 1..40)) {
        let mut a = Asm::new(0x40_0000);
        // Seed registers with recognizable values.
        for (i, r) in Gpr::all().iter().enumerate() {
            if r.num() != 4 {
                a.mov_ri(*r, 0x1111 * (i as i32 + 1));
            }
        }
        for inst in &prog {
            a.inst(*inst);
        }
        // Store every register so memory compare catches everything.
        for (i, r) in Gpr::all().iter().enumerate() {
            a.mov_store(Addr::abs(DATA + 4 * i as u32), *r);
        }
        // And the flags, via setcc of every condition.
        for c in 0..16u8 {
            a.inst(Inst::Setcc {
                cond: Cond::from_code(c),
                dst: Rm::Mem(Addr::abs(DATA + 64 + c as u32)),
            });
        }
        a.hlt();
        let img = Image::from_asm(&a).with_bss(DATA, 0x1000);
        differential(&img, cold_config(), &[(DATA, 96)], "prop-alu");
    }

    /// Randomized loop bodies reach the hot phase and still match.
    #[test]
    fn random_hot_loops_match(body in prop::collection::vec(arb_simple(), 1..10),
                              iters in 200u32..600) {
        let mut a = Asm::new(0x40_0000);
        a.mov_ri(ECX, iters as i32);
        let top = a.label();
        a.bind(top);
        for inst in &body {
            // ECX is the loop counter: redirect writes away from it.
            let patched = patch_away_from_ecx(*inst);
            a.inst(patched);
        }
        a.dec(ECX);
        a.jcc(Cond::Ne, top);
        for (i, r) in Gpr::all().iter().enumerate() {
            a.mov_store(Addr::abs(DATA + 4 * i as u32), *r);
        }
        a.hlt();
        let img = Image::from_asm(&a).with_bss(DATA, 0x1000);
        differential(&img, hot_config(), &[(DATA, 32)], "prop-hot");
    }

    /// encode -> decode is the identity on the instruction stream level:
    /// re-encoding the decode gives the same bytes.
    #[test]
    fn encode_decode_roundtrip(inst in arb_simple(), addr in 0u32..0x7FFF_0000) {
        let bytes = encode_to_vec(&inst, addr).expect("encodable");
        let (decoded, len) = decode(&bytes, addr).expect("decodable");
        prop_assert_eq!(len, bytes.len());
        let re = encode_to_vec(&decoded, addr).expect("re-encodable");
        prop_assert_eq!(re, bytes);
    }

    /// FPU stack push/pop/fxch sequences keep TOS/TAG consistent.
    #[test]
    fn fpu_stack_invariants(ops in prop::collection::vec(0u8..4, 1..64)) {
        let mut f = ia32::fpu::Fpu::new();
        let mut depth: i32 = 0;
        for op in ops {
            match op {
                0 => {
                    if f.push(1.0).is_ok() {
                        depth += 1;
                    }
                }
                1 => {
                    if f.pop().is_ok() {
                        depth -= 1;
                    }
                }
                2 => {
                    let _ = f.fxch(1);
                }
                _ => {
                    if depth > 0 {
                        prop_assert!(f.st(0).is_ok());
                    }
                }
            }
            prop_assert_eq!(f.depth() as i32, depth);
            prop_assert!(depth >= 0 && depth <= 8);
            // TOS always reflects depth relative to start.
            prop_assert_eq!(f.top as i32, (8 - depth).rem_euclid(8));
        }
    }
}

/// True if writing register number `n` at `size` touches ECX (the loop
/// counter): ECX itself at dword/word size, or CL (1) / CH (5) at byte
/// size.
fn touches_ecx(n: u8, size: Size) -> bool {
    match size {
        Size::B => n == 1 || n == 5,
        _ => n == 1,
    }
}

fn patch_away_from_ecx(inst: Inst) -> Inst {
    match inst {
        Inst::Alu { op, size, dst: Rm::Reg(r), src } if touches_ecx(r.num(), size) => {
            Inst::Alu {
                op,
                size,
                dst: Rm::Reg(Gpr::new(0)),
                src,
            }
        }
        Inst::Mov { size, dst: Rm::Reg(r), src } if touches_ecx(r.num(), size) => Inst::Mov {
            size,
            dst: Rm::Reg(Gpr::new(0)),
            src,
        },
        Inst::Shift { op, size, dst: Rm::Reg(r), count } if touches_ecx(r.num(), size) => {
            Inst::Shift {
                op,
                size,
                dst: Rm::Reg(Gpr::new(3)),
                count,
            }
        }
        Inst::IncDec { inc, size, dst: Rm::Reg(r) } if touches_ecx(r.num(), size) => {
            Inst::IncDec {
                inc,
                size,
                dst: Rm::Reg(Gpr::new(0)),
            }
        }
        Inst::ImulRm { dst, src } if dst.num() == 1 => Inst::ImulRm {
            dst: Gpr::new(0),
            src,
        },
        other => other,
    }
}
