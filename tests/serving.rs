//! Cross-tenant coherence for the shared, sharded translation cache:
//! tenants attached to the same namespace must reuse each other's
//! translations, and one tenant's invalidation traffic — SMC, cache
//! eviction, the SMC-thrash governor — must never hand a peer a stale
//! extent. Correctness is judged against the interpreter oracle per
//! tenant; whole-fleet determinism is judged byte-for-byte on `Stats`.

use std::sync::Arc;

use btgeneric::engine::{Config, Outcome};
use btgeneric::serving::{namespace_key, SharedCache, DEFAULT_SHARDS};
use btlib::serve::Scheduler;
use btlib::{Process, SimOs};
use ia32::asm::{Asm, Image};
use ia32::inst::{Addr, AluOp};
use ia32::regs::*;
use ia32::Cond;
use ia32el::testkit::{run_interp, RunEnd};

const DATA: u32 = 0x50_0000;
const ENTRY: u32 = 0x40_0000;

/// An outer loop over a chain of tiny blocks: enough distinct EIPs
/// that sharing, eviction, and per-shard generation churn are all
/// observable.
fn chain_image() -> Image {
    let mut a = Asm::new(ENTRY);
    a.mov_ri(EAX, 0);
    a.mov_ri(ECX, 300);
    let top = a.label();
    a.bind(top);
    for k in 0..8u32 {
        let next = a.label();
        a.alu_ri(AluOp::Add, EAX, k as i32 + 1);
        a.alu_ri(AluOp::Xor, EAX, 0x1111);
        a.jmp(next);
        a.bind(next);
    }
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(DATA), EAX);
    a.hlt();
    Image::from_asm(&a).with_bss(DATA, 0x1_0000)
}

/// A self-modifying loop: each iteration patches the immediate of its
/// own body, so every pass invalidates the code page it runs from.
fn smc_loop_image(iters: i32) -> Image {
    // Layout probe to find the patched immediate's address.
    let mut probe = Asm::new(ENTRY);
    probe.mov_ri(EAX, 0);
    probe.mov_ri(ECX, 0);
    probe.mov_ri(EBX, 0);
    let body_addr = probe.here() - 5; // mov_ri EBX is 5 bytes

    let mut a = Asm::new(ENTRY);
    a.mov_ri(EAX, 0);
    a.mov_ri(ECX, iters);
    let top = a.label();
    a.bind(top);
    a.mov_ri(EBX, 0); // immediate patched below
    a.alu_rr(AluOp::Add, EAX, EBX);
    a.mov_store(Addr::abs(body_addr + 1), ECX); // SMC store
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(DATA), EAX);
    a.hlt();
    Image::from_asm(&a)
        .with_bss(DATA, 0x1000)
        .with_writable_code()
}

/// Two binaries with identical block shapes (same instruction
/// lengths, same `src_range`s) but different immediates — a forced
/// namespace-key collision whose records differ only in source bytes.
fn variant_image(add_const: i32, xor_const: i32) -> Image {
    let mut a = Asm::new(ENTRY);
    a.mov_ri(EAX, 0);
    a.mov_ri(ECX, 50);
    let top = a.label();
    a.bind(top);
    a.alu_ri(AluOp::Add, EAX, add_const);
    a.alu_ri(AluOp::Xor, EAX, xor_const);
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(DATA), EAX);
    a.hlt();
    Image::from_asm(&a).with_bss(DATA, 0x1000)
}

fn oracle(img: &Image) -> u64 {
    let r = run_interp(img, 50_000_000);
    assert_eq!(r.end, RunEnd::Halt, "oracle must halt");
    r.mem.read(DATA as u64, 4).unwrap()
}

fn guest_result(p: &Process<SimOs>) -> u64 {
    p.engine.mem.read(DATA as u64, 4).unwrap()
}

fn base_cfg() -> Config {
    Config {
        heat_threshold: 64,
        hot_candidates: 2,
        ..Config::default()
    }
}

/// Launches a tenant attached to `cache` under `binary_id`'s
/// namespace. Tenants of the same (config, binary_id) share.
fn launch_tenant(
    img: &Image,
    cfg: &Config,
    cache: &Arc<SharedCache>,
    binary_id: u64,
) -> Process<SimOs> {
    let mut p = Process::launch_with(img, SimOs::new(), cfg.clone()).expect("launch");
    p.engine
        .attach_shared(cache.tenant(namespace_key(cfg, binary_id)));
    p
}

#[test]
fn tenants_share_cold_translations_and_reheat() {
    let img = chain_image();
    let want = oracle(&img);
    let cfg = base_cfg();
    let cache = SharedCache::new(DEFAULT_SHARDS);

    // First tenant translates organically and publishes.
    let mut a = launch_tenant(&img, &cfg, &cache, 1);
    assert!(matches!(a.run(u64::MAX / 2), Outcome::Halted(_)));
    assert_eq!(guest_result(&a), want, "first tenant must match oracle");
    assert!(a.engine.stats.shared_publishes > 0, "publishes expected");
    assert_eq!(a.engine.stats.shared_installs, 0, "nothing to import yet");
    a.engine.shared_sync(); // push the earned heat profile

    // Second tenant imports instead of re-translating.
    let mut b = launch_tenant(&img, &cfg, &cache, 1);
    assert!(matches!(b.run(u64::MAX / 2), Outcome::Halted(_)));
    assert_eq!(guest_result(&b), want, "second tenant must match oracle");
    assert!(b.engine.stats.shared_installs > 0, "imports expected");
    assert!(
        b.engine.stats.cold_blocks < a.engine.stats.cold_blocks,
        "sharing must displace organic translation: {} vs {}",
        b.engine.stats.cold_blocks,
        a.engine.stats.cold_blocks
    );
    assert!(
        b.engine.stats.profile_heat_restored > 0,
        "synced profile must re-heat the importing tenant"
    );
    assert_eq!(cache.namespaces(), 1);
    assert!(cache.unique_eips() > 0);
}

#[test]
fn generation_bump_rejects_stale_entries() {
    let img = chain_image();
    let want = oracle(&img);
    let cfg = base_cfg();
    let cache = SharedCache::new(DEFAULT_SHARDS);
    let key = namespace_key(&cfg, 2);

    let mut a = launch_tenant(&img, &cfg, &cache, 2);
    assert!(matches!(a.run(u64::MAX / 2), Outcome::Halted(_)));
    assert!(a.engine.stats.shared_publishes > 0);

    // Every shard generation moves past the published tags — as after
    // a peer's full cache flush.
    let ns = cache.namespace(key);
    let g0 = ns.shard_gen(ENTRY);
    let mut cont = 0;
    assert_eq!(ns.bump_all(&mut cont), DEFAULT_SHARDS as u64);
    assert_eq!(ns.shard_gen(ENTRY), g0 + 1);
    assert_eq!(ns.unique_eips(), 0, "all entries are now stale-tagged");

    // A stale tag must reject, never import; the tenant falls back to
    // organic translation and re-publishes under the new generation.
    let mut b = launch_tenant(&img, &cfg, &cache, 2);
    assert!(matches!(b.run(u64::MAX / 2), Outcome::Halted(_)));
    assert_eq!(guest_result(&b), want);
    assert!(b.engine.stats.shared_gen_rejects > 0, "stale tags reject");
    assert_eq!(b.engine.stats.shared_installs, 0, "no stale imports");
    assert!(b.engine.stats.shared_publishes > 0, "re-publish expected");

    // The re-published records serve the next tenant again.
    let mut c = launch_tenant(&img, &cfg, &cache, 2);
    assert!(matches!(c.run(u64::MAX / 2), Outcome::Halted(_)));
    assert_eq!(guest_result(&c), want);
    assert!(c.engine.stats.shared_installs > 0, "sharing must resume");
}

#[test]
fn smc_invalidation_mid_run_stays_coherent() {
    let img = smc_loop_image(200);
    let want = oracle(&img);
    let cfg = Config {
        smc_thrash_threshold: 0, // governor off: pure invalidation churn
        ..base_cfg()
    };
    let cache = SharedCache::new(DEFAULT_SHARDS);

    // Two tenants of the same self-patching binary, interleaved on a
    // short quantum: each one's SMC invalidations land mid-run while
    // the other is dispatching into the same shards.
    let mut sched = Scheduler::new(500, 2);
    for tag in 0..2 {
        sched.admit(tag, launch_tenant(&img, &cfg, &cache, 3), u64::MAX / 2);
    }
    sched.drain(100_000);
    let done = sched.take_completed();
    assert_eq!(done.len(), 2);

    let mut gen_bumps = 0;
    for (tag, p, out) in &done {
        assert!(matches!(out, Outcome::Halted(_)), "tenant {tag}: {out:?}");
        assert_eq!(guest_result(p), want, "tenant {tag} must match oracle");
        assert!(p.engine.stats.smc_events > 0, "SMC must fire per tenant");
        gen_bumps += p.engine.stats.shared_gen_bumps;
    }
    assert!(
        gen_bumps > 0,
        "SMC invalidations must bump shared generations"
    );
    assert!(
        sched.slices() > done.len() as u64,
        "the quantum must actually interleave the tenants"
    );
}

#[test]
fn eviction_pressure_keeps_peers_correct() {
    let img = chain_image();
    let want = oracle(&img);
    // A cache too small for the working set: translations are evicted
    // and re-made throughout the run, and every eviction must pull the
    // shared record and bump its shard.
    let cfg = Config {
        max_cache_bundles: 48,
        ..base_cfg()
    };
    let cache = SharedCache::new(DEFAULT_SHARDS);

    let mut a = launch_tenant(&img, &cfg, &cache, 4);
    assert!(matches!(a.run(u64::MAX / 2), Outcome::Halted(_)));
    assert_eq!(guest_result(&a), want);
    assert!(a.engine.stats.evictions > 0, "pressure must evict");
    assert!(
        a.engine.stats.shared_gen_bumps > 0,
        "evictions must invalidate the shared records"
    );

    // A peer under the same churn still resolves to the oracle result:
    // whatever mix of imports, rejects, and organic translation it
    // sees, no stale extent is ever executed.
    let mut b = launch_tenant(&img, &cfg, &cache, 4);
    assert!(matches!(b.run(u64::MAX / 2), Outcome::Halted(_)));
    assert_eq!(guest_result(&b), want);
}

#[test]
fn governor_blacklist_denies_page_for_peers() {
    let img = smc_loop_image(40);
    let want = oracle(&img);
    let cfg = Config {
        smc_thrash_threshold: 2, // hair-trigger governor
        ..base_cfg()
    };
    let cache = SharedCache::new(DEFAULT_SHARDS);

    // The first tenant thrashes its code page until the governor
    // blacklists it — which must also deny the page namespace-wide.
    let mut a = launch_tenant(&img, &cfg, &cache, 5);
    assert!(matches!(a.run(u64::MAX / 2), Outcome::Halted(_)));
    assert_eq!(guest_result(&a), want);
    assert!(a.engine.stats.smc_blacklists > 0, "governor must trip");
    assert!(a.engine.stats.shared_gen_bumps > 0, "denial bumps shards");

    // A later tenant of the same binary is told not to import from the
    // page the guest keeps rewriting: consults are denied, nothing is
    // installed, and it still reaches the oracle result on its own.
    let mut b = launch_tenant(&img, &cfg, &cache, 5);
    assert!(matches!(b.run(u64::MAX / 2), Outcome::Halted(_)));
    assert_eq!(guest_result(&b), want);
    assert!(b.engine.stats.shared_gen_rejects > 0, "denied consults");
    assert_eq!(b.engine.stats.shared_installs, 0, "denied page imports");
}

#[test]
fn same_key_different_bytes_is_checksum_rejected() {
    // Two different binaries forced into one namespace (a caller
    // passing the same binary id): the generation tag says "current",
    // but the per-record source checksum is the true gate.
    let img_a = variant_image(3, 0x1111);
    let img_b = variant_image(7, 0x2222);
    let cfg = base_cfg();
    let cache = SharedCache::new(DEFAULT_SHARDS);

    let mut a = launch_tenant(&img_a, &cfg, &cache, 6);
    assert!(matches!(a.run(u64::MAX / 2), Outcome::Halted(_)));
    assert_eq!(guest_result(&a), oracle(&img_a));
    assert!(a.engine.stats.shared_publishes > 0);

    let mut b = launch_tenant(&img_b, &cfg, &cache, 6);
    assert!(matches!(b.run(u64::MAX / 2), Outcome::Halted(_)));
    assert_eq!(
        guest_result(&b),
        oracle(&img_b),
        "foreign records must never change this tenant's result"
    );
    assert!(
        b.engine.stats.shared_stale_rejects > 0,
        "checksum mismatch must reject the foreign record"
    );
    // The loop tail (store + hlt) is byte-identical in both variants,
    // so importing it is legitimate — the gate is the source bytes,
    // not the caller-supplied id. Only the differing blocks matter.
    assert!(
        b.engine.stats.shared_installs < a.engine.stats.shared_publishes,
        "the differing blocks must not be imported"
    );
}

#[test]
fn seeded_fleets_are_byte_identical() {
    let img = chain_image();
    let want = oracle(&img);
    let fleet = || {
        let cfg = base_cfg();
        let cache = SharedCache::new(DEFAULT_SHARDS);
        let mut sched = Scheduler::new(700, 3);
        for tag in 0..6 {
            sched.admit(tag, launch_tenant(&img, &cfg, &cache, 7), u64::MAX / 2);
        }
        sched.drain(100_000);
        sched
            .take_completed()
            .into_iter()
            .map(|(tag, p, out)| {
                assert!(matches!(out, Outcome::Halted(_)));
                assert_eq!(guest_result(&p), want, "tenant {tag} matches oracle");
                (tag, p.engine.machine.cycles, p.engine.stats.clone())
            })
            .collect::<Vec<_>>()
    };
    let a = fleet();
    let b = fleet();
    assert_eq!(a.len(), 6);
    assert_eq!(
        a, b,
        "same fleet, same shared cache state, byte-identical stats"
    );
}
