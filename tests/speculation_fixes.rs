//! Exercises the §5 speculation *failure* paths: blocks are translated
//! under one FP/SSE state and re-entered under another, forcing the
//! engine-side TOS rotation, FP/MMX mode fix, XMM format conversion,
//! and the tag-mismatch "special block" rebuild — all while remaining
//! bit-identical to the oracle.

use ia32::asm::{Asm, Image};
use ia32::inst::*;
use ia32::regs::*;
use ia32el::testkit::{cold_config, differential, run_interp, run_translated};

const DATA: u32 = 0x50_0000;

fn image(f: impl FnOnce(&mut Asm)) -> Image {
    let mut a = Asm::new(0x40_0000);
    f(&mut a);
    Image::from_asm(&a).with_bss(DATA, 0x1_0000)
}

fn put_f64(a: &mut Asm, addr: u32, v: f64) {
    let bits = v.to_bits();
    a.mov_mi(Addr::abs(addr), bits as u32 as i32);
    a.mov_mi(Addr::abs(addr + 4), (bits >> 32) as u32 as i32);
}

#[test]
fn tos_mismatch_triggers_rotation_fix() {
    // A shared FP block first entered with stack depth 1, then with
    // depth 2: the second entry fails the TOS head check and the engine
    // rotates the physical registers.
    let img = image(|a| {
        put_f64(a, DATA, 3.0);
        let shared = a.label();
        let after1 = a.label();
        let after2 = a.label();
        // First visit: depth 1.
        a.inst(Inst::Fld {
            src: FpOperand::M64(Addr::abs(DATA)),
        });
        a.mov_ri(ESI, 0);
        a.jmp(shared);
        a.bind(after1);
        // Second visit: depth 2 (different TOS).
        a.inst(Inst::Fld {
            src: FpOperand::M64(Addr::abs(DATA)),
        });
        a.inst(Inst::Fld1);
        a.mov_ri(ESI, 1);
        a.jmp(shared);
        a.bind(after2);
        a.hlt();
        // The shared block: square ST(0) and store it.
        a.bind(shared);
        a.inst(Inst::Fld {
            src: FpOperand::St(0),
        });
        a.inst(Inst::Farith {
            op: FpArithOp::Mul,
            form: FpArithForm::StiSt0 { i: 1, pop: true },
        });
        a.inst(Inst::Fst {
            dst: FpOperand::M64(Addr::base_index(ESI, ESI, 8, DATA as i32 + 16)),
            pop: true,
        });
        // Return to the right continuation.
        a.cmp_ri(ESI, 0);
        a.jcc(ia32::Cond::E, after1);
        // Clean the remaining stack entry from the second path.
        a.inst(Inst::Fst {
            dst: FpOperand::St(0),
            pop: true,
        });
        a.jmp(after2);
    });
    let p = differential(&img, cold_config(), &[(DATA, 64)], "tosfix");
    assert!(
        p.engine.stats.tos_fixes > 0,
        "the shared block must have needed a TOS rotation"
    );
}

#[test]
fn mmx_mode_mismatch_triggers_fix() {
    // A pure-FP block re-entered while the machine is in MMX mode.
    let img = image(|a| {
        put_f64(a, DATA, 2.0);
        let fp_block = a.label();
        let back1 = a.label();
        let back2 = a.label();
        a.mov_ri(ESI, 0);
        a.jmp(fp_block);
        a.bind(back1);
        // Switch to MMX mode.
        a.mov_ri(EAX, 0x1234);
        a.inst(Inst::Movd {
            mm: Mm::new(0),
            rm: Rm::Reg(EAX),
            to_mm: true,
        });
        a.inst(Inst::PAlu {
            op: MmxOp::PAdd(2),
            dst: Mm::new(0),
            src: MmM::Reg(Mm::new(0)),
        });
        a.inst(Inst::Emms);
        // EMMS leaves MMX mode in the oracle; to genuinely re-enter the
        // block in MMX mode, do another MMX op without EMMS.
        a.mov_ri(EAX, 0x77);
        a.inst(Inst::Movd {
            mm: Mm::new(1),
            rm: Rm::Reg(EAX),
            to_mm: true,
        });
        a.mov_ri(ESI, 1);
        a.jmp(fp_block);
        a.bind(back2);
        a.hlt();
        // The FP block (speculates FP mode).
        a.bind(fp_block);
        a.inst(Inst::Fld {
            src: FpOperand::M64(Addr::abs(DATA)),
        });
        a.inst(Inst::Fsqrt);
        a.inst(Inst::Fst {
            dst: FpOperand::M64(Addr::base_index(ESI, ESI, 8, DATA as i32 + 16)),
            pop: true,
        });
        a.cmp_ri(ESI, 0);
        a.jcc(ia32::Cond::E, back1);
        a.jmp(back2);
    });
    let p = differential(&img, cold_config(), &[(DATA, 64)], "mmxfix");
    assert!(
        p.engine.stats.mmx_fixes > 0,
        "re-entering the FP block in MMX mode must fix the mode"
    );
}

#[test]
fn xmm_format_mismatch_triggers_fix() {
    // A scalar-SSE block first entered with xmm0 scalar, then packed.
    let img = image(|a| {
        a.mov_mi(Addr::abs(DATA), 2.0f32.to_bits() as i32);
        for i in 1..4u32 {
            a.mov_mi(Addr::abs(DATA + 4 * i), (i as f32).to_bits() as i32);
        }
        let scalar_block = a.label();
        let back1 = a.label();
        let back2 = a.label();
        // First entry: xmm0 in scalar format.
        a.inst(Inst::Movss {
            xmm: Xmm::new(0),
            rm: XmmM::Mem(Addr::abs(DATA)),
            to_xmm: true,
        });
        a.mov_ri(ESI, 0);
        a.jmp(scalar_block);
        a.bind(back1);
        // Second entry: xmm0 in packed format (after a packed op).
        a.inst(Inst::Movps {
            xmm: Xmm::new(0),
            rm: XmmM::Mem(Addr::abs(DATA)),
            to_xmm: true,
            aligned: true,
        });
        a.inst(Inst::SseArith {
            op: SseOp::Add,
            scalar: false,
            dst: Xmm::new(0),
            src: XmmM::Mem(Addr::abs(DATA)),
        });
        a.mov_ri(ESI, 1);
        a.jmp(scalar_block);
        a.bind(back2);
        a.hlt();
        // The shared scalar block.
        a.bind(scalar_block);
        a.inst(Inst::SseArith {
            op: SseOp::Mul,
            scalar: true,
            dst: Xmm::new(0),
            src: XmmM::Mem(Addr::abs(DATA)),
        });
        a.inst(Inst::Movss {
            xmm: Xmm::new(0),
            rm: XmmM::Mem(Addr {
                base: Some(ESI),
                index: Some((ESI, 4)),
                disp: DATA as i32 + 32,
            }),
            to_xmm: false,
        });
        a.cmp_ri(ESI, 0);
        a.jcc(ia32::Cond::E, back1);
        a.jmp(back2);
    });
    let p = differential(&img, cold_config(), &[(DATA, 64)], "xmmfix");
    assert!(
        p.engine.stats.xmm_fixes > 0,
        "re-entering the scalar block in packed format must convert"
    );
}

#[test]
fn tag_mismatch_rebuilds_special_block() {
    // A block reading ST(0) is first run with a valid stack, then with
    // an empty one: the head tag check fails, the engine rebuilds the
    // block with inline checks, and the stack fault surfaces precisely.
    let img = image(|a| {
        put_f64(a, DATA, 5.0);
        let reader = a.label();
        let back1 = a.label();
        a.inst(Inst::Fld {
            src: FpOperand::M64(Addr::abs(DATA)),
        });
        a.mov_ri(ESI, 0);
        a.jmp(reader);
        a.bind(back1);
        // Stack is now empty; enter the reader again -> stack fault.
        a.mov_ri(ESI, 1);
        a.jmp(reader);
        // not reached
        a.hlt();
        a.bind(reader);
        a.inst(Inst::Farith {
            op: FpArithOp::Add,
            form: FpArithForm::St0Sti(0),
        });
        a.inst(Inst::Fst {
            dst: FpOperand::M64(Addr::abs(DATA + 24)),
            pop: true,
        });
        a.cmp_ri(ESI, 0);
        a.jcc(ia32::Cond::E, back1);
        a.hlt();
    });
    // Both sides must fault at the same EIP with the same state.
    let oracle = run_interp(&img, 1_000_000);
    let (trans, p) = run_translated(&img, cold_config(), 10_000_000);
    match (&oracle.end, &trans.end) {
        (ia32el::testkit::RunEnd::Fault(oe), ia32el::testkit::RunEnd::Fault(te)) => {
            assert_eq!(oe, te, "stack fault must be precise after the rebuild");
        }
        other => panic!("expected stack faults, got {other:?}"),
    }
    assert!(
        p.engine.stats.tag_fixes > 0,
        "the tag mismatch must have rebuilt the block"
    );
}
