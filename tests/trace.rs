//! The observability layer at system level: the lifecycle event stream
//! must be byte-identical across same-seed runs (chaos included), the
//! ring buffer must keep flight-recorder semantics under overflow,
//! every injected fault must surface as a `TraceEvent` in order, and a
//! fully-masked tracer must be cycle-identical to tracing off.

use btgeneric::chaos::{FaultKind, FaultPlan};
use btgeneric::engine::{Config, Outcome};
use btgeneric::trace::{EventData, EventKind, EventMask, TraceConfig};
use btlib::{Process, SimOs, SimOsFaults};
use ia32::asm::{Asm, Image};
use ia32::inst::{Addr, AluOp};
use ia32::regs::*;
use ia32::Cond;

const DATA: u32 = 0x50_0000;
const ENTRY: u32 = 0x40_0000;

/// An outer loop over a chain of `n` tiny blocks: lots of distinct
/// blocks (translation traffic) that all get warm (hot traffic).
fn chain_image(n: u32, iters: i32) -> Image {
    let mut a = Asm::new(ENTRY);
    a.mov_ri(EAX, 0);
    a.mov_ri(ECX, iters);
    let top = a.label();
    a.bind(top);
    for k in 0..n {
        let next = a.label();
        a.alu_ri(AluOp::Add, EAX, k as i32 + 1);
        a.alu_ri(AluOp::Xor, EAX, 0x1111);
        a.jmp(next);
        a.bind(next);
    }
    a.dec(ECX);
    a.jcc(Cond::Ne, top);
    a.mov_store(Addr::abs(DATA), EAX);
    a.hlt();
    Image::from_asm(&a).with_bss(DATA, 0x1_0000)
}

fn storm_cfg(trace: TraceConfig) -> Config {
    Config {
        heat_threshold: 16,
        hot_candidates: 1,
        verify_on_dispatch: true,
        hot_session_budget: 100_000,
        trace,
        ..Config::default()
    }
}

/// Runs the chain workload under a full `FaultPlan::storm` with the
/// given trace config and returns the halted process.
fn storm_run(img: &Image, seed: u64, trace: TraceConfig) -> Process<SimOs> {
    let plan = FaultPlan::storm(seed);
    let os = SimOs::with_faults(SimOsFaults {
        fail_allocs: plan.os_alloc_failures,
        fail_syscalls: 0,
    });
    let mut p = Process::launch_with(img, os, storm_cfg(trace)).expect("launch");
    p.engine.chaos = Some(plan);
    assert!(matches!(p.run(200_000_000), Outcome::Halted(_)));
    p
}

/// A ring big enough to hold every event the storm produces.
fn roomy() -> TraceConfig {
    TraceConfig {
        enabled: true,
        capacity: 1 << 16,
        ..TraceConfig::default()
    }
}

/// Same seed, same workload, same config: the rendered event stream is
/// byte-identical — the tracer composes with the chaos harness's
/// determinism guarantee.
#[test]
fn trace_stream_is_byte_identical_across_runs() {
    let img = chain_image(20, 50);
    let a = storm_run(&img, 1234, roomy());
    let b = storm_run(&img, 1234, roomy());
    assert!(a.engine.stats.faults_injected > 0, "the storm must fire");
    let ta = a.tracer().render_text();
    assert!(!ta.is_empty(), "the run must record events");
    assert_eq!(
        ta,
        b.tracer().render_text(),
        "same seed must render a byte-identical trace"
    );
    assert_eq!(a.engine.machine.cycles, b.engine.machine.cycles);
    assert_eq!(a.engine.stats, b.engine.stats);
}

/// Every engine-side fault injection surfaces as a `FaultInjected`
/// event, and the stream is densely sequenced in non-decreasing cycle
/// order.
#[test]
fn every_injected_fault_appears_as_an_event_in_order() {
    let img = chain_image(20, 50);
    let p = storm_run(&img, 9, roomy());
    let t = p.tracer();
    assert_eq!(t.dropped(), 0, "the roomy ring must hold the whole run");
    assert_eq!(t.sampled_out(), 0);

    let evs: Vec<_> = t.events().collect();
    for (i, ev) in evs.iter().enumerate() {
        assert_eq!(ev.seq, i as u64, "seqs must be dense from zero");
    }
    for w in evs.windows(2) {
        assert!(
            w[0].cycle <= w[1].cycle,
            "the simulated clock must never run backwards"
        );
    }

    let faults: Vec<FaultKind> = evs
        .iter()
        .filter_map(|e| match e.data {
            EventData::FaultInjected { kind } => Some(kind),
            _ => None,
        })
        .collect();
    assert!(!faults.is_empty(), "the storm must fire");
    assert_eq!(
        faults.len() as u64,
        p.engine.stats.faults_injected,
        "every delivered injection must appear in the stream"
    );
    assert_eq!(
        t.observed(EventKind::FaultInjected),
        p.engine.stats.faults_injected
    );

    // Kinds injected unconditionally on a successful roll match the
    // plan's counters exactly; victim-picking kinds can roll true with
    // no live victim, so the stream is a lower bound there.
    let plan = p.engine.chaos.as_ref().expect("the plan survives the run");
    let count = |k: FaultKind| faults.iter().filter(|&&f| f == k).count() as u64;
    for k in [
        FaultKind::Translate,
        FaultKind::SmcInvalidate,
        FaultKind::HotBudget,
    ] {
        assert_eq!(count(k), plan.injected[k as usize], "{}", k.name());
    }
    for k in [FaultKind::MisalignStorm, FaultKind::BitFlip] {
        assert!(count(k) <= plan.injected[k as usize], "{}", k.name());
    }
}

/// A tiny ring under heavy lifecycle churn: the drop counter ticks and
/// the survivors are exactly the last `capacity` events, oldest first.
#[test]
fn ring_wraparound_keeps_the_latest_history() {
    let img = chain_image(24, 40);
    let cfg = Config {
        heat_threshold: 16,
        hot_candidates: 1,
        max_cache_bundles: 150,
        trace: TraceConfig {
            enabled: true,
            capacity: 32,
            ..TraceConfig::default()
        },
        ..Config::default()
    };
    let mut p = Process::launch_with(&img, SimOs::new(), cfg).expect("launch");
    assert!(matches!(p.run(200_000_000), Outcome::Halted(_)));
    let t = p.tracer();
    assert_eq!(t.recorded(), 32, "the ring must fill");
    assert!(t.dropped() > 0, "churn must overflow the tiny ring");
    assert_eq!(t.seen(), t.recorded() as u64 + t.dropped());
    let first = t.seen() - 32;
    for (i, ev) in t.events().enumerate() {
        assert_eq!(
            ev.seq,
            first + i as u64,
            "survivors must be the most recent history, oldest first"
        );
    }
}

/// The zero-cost contract at system level: an enabled tracer whose mask
/// rejects everything charges nothing — the run is cycle-identical to
/// tracing off, fault storm included, while the per-kind observation
/// counters still tick.
#[test]
fn masked_tracing_is_cycle_identical_to_off() {
    let img = chain_image(20, 50);
    let off = storm_run(&img, 77, TraceConfig::default());
    let masked = storm_run(
        &img,
        77,
        TraceConfig {
            enabled: true,
            event_mask: EventMask::NONE,
            ..TraceConfig::default()
        },
    );
    assert_eq!(off.engine.machine.cycles, masked.engine.machine.cycles);
    assert_eq!(off.engine.stats, masked.engine.stats);
    assert_eq!(masked.tracer().recorded(), 0);
    assert!(
        masked.tracer().observed(EventKind::FaultInjected) > 0,
        "the enabled path must still observe what it does not record"
    );
}
